"""Sharded, crash-resumable campaign execution.

:class:`ShardedCampaignScheduler` is the distributed-shape executor the
ROADMAP's "distributed, resumable mega-campaigns" item calls for.  It
builds on the same primitives as :class:`~repro.campaign.runner.CampaignRunner`
(keyed jobs, the content-addressed :class:`~repro.campaign.cache.ResultCache`,
the append-only run journal, :func:`~repro.campaign.runner.build_manifest`)
and adds three things:

**Deterministic sharding.**  Each pending job is assigned to a shard by
:func:`shard_of` — a pure function of the job's content-addressed cache
key — so shard membership is stable across runs, resumes, and hosts; no
coordinator state needs to survive a crash for the plan to be
reconstructible.  Shards are a *locality* hint, not a partition wall:

**Work stealing.**  Job durations are skewed (a 4096-rank HPL sweep and a
small STREAM job can live in the same campaign), so worker slots keep a
home-shard affinity and, once their home runs dry, steal from the deepest
remaining backlog (``job.stolen`` journal events record each steal).  The
scheduler stays busy until the global queue drains, not until the
unluckiest shard finishes.

**Crash resume.**  ``run(jobs, resume=True)`` replays the existing
journal into per-job attempt state (:func:`repro.journal.replay`), skips
every job that is terminal in the replayed state *and* recoverable from
the shared result cache, re-schedules only the remainder, and extends the
*same* journal file under the original run id (``run.resumed`` event).
The resumed manifest is row-for-row equivalent to an uninterrupted run —
same fingerprint — because recovery is just a cache hit and
``cache_status``/``attempts`` are volatile manifest fields by design.
A job that crashed *between* its ``job.completed`` event and its cache
publication (``job.stored``) is simply re-executed: the journal is the
witness, the cache is the payload store, and resume trusts payloads only
from the cache.

Execution is delegated to a :class:`WorkerTransport` — the seam where
multi-host execution slots in later.  Two transports ship today:
:class:`InlineTransport` (in-process, used for ``workers=1`` and as the
degradation path when a pool cannot start) and
:class:`ProcessPoolTransport` (one Python process per worker slot; each
worker opens its own ``O_APPEND`` handle on the shared journal and its
own view of the shared cache directory, so cache publication happens
worker-side and concurrently — the access pattern the cache's unique-
tmp-name atomic publish exists for).

See ``docs/distributed_campaigns.md`` for the operational story.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple, Union

from .. import journal as jrnl
from .. import telemetry as tele
from ..exceptions import CampaignExecutionError, ReproError
from .cache import ResultCache, cache_key
from .jobs import CampaignJob
from .runner import (
    CampaignResult,
    JobOutcome,
    _attempt_job,
    build_manifest,
    check_jobs,
)

__all__ = [
    "shard_of",
    "ShardPlan",
    "plan_shards",
    "WorkItem",
    "WorkResult",
    "execute_work_item",
    "WorkerTransport",
    "InlineTransport",
    "ProcessPoolTransport",
    "ShardedCampaignScheduler",
]


def shard_of(key: str, num_shards: int) -> int:
    """The shard a cache key belongs to (pure, content-driven).

    Uses the key's leading 64 bits, so shard membership depends only on
    the job's canonical serialization — every run, resume, or host that
    agrees on the job agrees on its shard without shared state.
    """
    if num_shards < 1:
        raise ReproError(f"num_shards must be >= 1, got {num_shards}")
    return int(key[:16], 16) % num_shards


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic partition of job positions into shards.

    ``assignments[s]`` holds the positions (into the planned key list)
    that landed in shard ``s``, in submission order.  Shards may be empty
    — content-driven assignment balances only in expectation; skew is
    what work stealing absorbs at run time.
    """

    num_shards: int
    assignments: Tuple[Tuple[int, ...], ...]

    @property
    def sizes(self) -> Tuple[int, ...]:
        return tuple(len(shard) for shard in self.assignments)

    @property
    def jobs(self) -> int:
        return sum(self.sizes)


def plan_shards(keys: Sequence[str], num_shards: int) -> ShardPlan:
    """Partition keyed jobs into ``num_shards`` deterministic shards."""
    if num_shards < 1:
        raise ReproError(f"num_shards must be >= 1, got {num_shards}")
    buckets: List[List[int]] = [[] for _ in range(num_shards)]
    for position, key in enumerate(keys):
        buckets[shard_of(key, num_shards)].append(position)
    return ShardPlan(
        num_shards=num_shards,
        assignments=tuple(tuple(bucket) for bucket in buckets),
    )


@dataclass(frozen=True)
class WorkItem:
    """One schedulable unit: a keyed job plus everything a worker needs.

    Self-contained and picklable by design — a transport may hand it to
    another process (or, later, another host), so it carries *paths* to
    the shared journal and cache, never live handles.
    """

    index: int  # position in the campaign's job list (ordering contract)
    shard: int  # shard the plan assigned it to (pre-steal)
    job: CampaignJob
    key: str
    retries: int = 0
    backoff_s: float = 0.0
    backoff_seed: int = 0
    with_telemetry: bool = False
    journal_path: Optional[str] = None
    run_id: Optional[str] = None
    timeline_dir: Optional[str] = None
    cache_dir: Optional[str] = None
    code_version: Optional[str] = None


@dataclass
class WorkResult:
    """What came back for one :class:`WorkItem`."""

    index: int
    shard: int
    payload: Optional[Dict]
    error: Optional[Dict]
    attempts: int
    wall_s: float
    cache_status: str  # "hit" / "computed" / "uncached" / "failed"
    spans: Optional[List[Dict]] = None
    metrics: Optional[Dict] = None
    cache_stats: Optional[Dict] = None  # per-item deltas from a worker-side cache


def execute_work_item(
    item: WorkItem,
    *,
    journal: Optional[jrnl.JournalWriter] = None,
    cache: Optional[ResultCache] = None,
) -> WorkResult:
    """Probe → execute (contained, with retries) → publish, for one item.

    The single worker-side execution path every transport funnels
    through.  The cache probe runs *in the executing process* — in a
    shared cache directory another worker, shard, or concurrent campaign
    may have published the key since the parent's pre-dispatch probe.  On
    success the payload is published to the shared cache *from the
    worker* (atomic rename; unique staging name), and only then does the
    ``job.stored`` event land — so a journal that contains ``job.stored``
    implies a durable cache entry, which is exactly the order crash
    resume relies on.
    """
    t0 = time.perf_counter()
    if cache is not None:
        cached = cache.get(item.key)
        if cached is not None:
            if journal is not None:
                journal.emit(
                    "job.cache_hit", job=item.job.job_id, key=item.key, attempt=0
                )
            return WorkResult(
                index=item.index,
                shard=item.shard,
                payload=cached,
                error=None,
                attempts=0,
                wall_s=time.perf_counter() - t0,
                cache_status="hit",
            )
    timeline_dir = Path(item.timeline_dir) if item.timeline_dir is not None else None
    payload, error, attempts, wall = _attempt_job(
        item.job,
        retries=item.retries,
        backoff_s=item.backoff_s,
        backoff_seed=item.backoff_seed,
        journal=journal,
        timeline_dir=timeline_dir,
    )
    if error is not None:
        return WorkResult(
            index=item.index,
            shard=item.shard,
            payload=None,
            error=error,
            attempts=attempts,
            wall_s=wall,
            cache_status="failed",
        )
    status = "uncached"
    if cache is not None:
        with tele.span("job.store", job=item.job.job_id, skipped=False):
            cache.put(item.key, payload)
        if journal is not None:
            journal.emit("job.stored", job=item.job.job_id, key=item.key)
        status = "computed"
    return WorkResult(
        index=item.index,
        shard=item.shard,
        payload=payload,
        error=None,
        attempts=attempts,
        wall_s=wall,
        cache_status=status,
    )


#: Jobs this worker process has finished — heartbeat payload (survives
#: across submissions into one reused pool worker).
_WORKER_JOBS_DONE = 0


def _scheduler_worker(item: WorkItem) -> WorkResult:
    """Pool-side shim: rebuild per-process handles, run one item.

    Mirrors the runner's pool shim: the worker drops any fork-inherited
    ambient journal/telemetry bindings, opens its *own* ``O_APPEND``
    handle on the shared journal (same run id) and its own view of the
    shared cache directory, emits a pickup heartbeat, and ships finished
    telemetry spans/metric state plus its cache-stat deltas back with the
    payload.
    """
    global _WORKER_JOBS_DONE
    journal = None
    if item.journal_path is not None:
        jrnl.detach()
        journal = jrnl.JournalWriter(
            item.journal_path, run_id=item.run_id, process=f"worker-{os.getpid()}"
        )
        jrnl.attach(journal)
        journal.emit(
            "worker.heartbeat", jobs_done=_WORKER_JOBS_DONE, **jrnl.rusage_fields()
        )
    cache = None
    if item.cache_dir is not None:
        cache = ResultCache(item.cache_dir, code_version=item.code_version)
    try:
        if not item.with_telemetry:
            result = execute_work_item(item, journal=journal, cache=cache)
        else:
            # Fork-started workers inherit a copy of the parent session;
            # collect into a fresh one and ship it back instead.
            tele.deactivate()
            session = tele.TelemetrySession(
                label=f"worker:{item.job.job_id}", process=f"worker-{os.getpid()}"
            )
            with tele.use(session):
                result = execute_work_item(item, journal=journal, cache=cache)
            result.spans = session.tracer.as_dicts()
            result.metrics = session.metrics.state()
        if cache is not None:
            result.cache_stats = {
                "hits": cache.stats.hits,
                "misses": cache.stats.misses,
                "invalidations": cache.stats.invalidations,
                "puts": cache.stats.puts,
            }
        return result
    finally:
        if journal is not None:
            _WORKER_JOBS_DONE += 1
            jrnl.detach()
            journal.close()


class WorkerTransport:
    """Where work items execute: the multi-host seam.

    A transport owns a fixed number of worker ``slots`` and moves
    :class:`WorkItem`\\ s to them.  The scheduler drives it with a strict
    protocol — at most ``slots`` items outstanding, ``next_result()``
    only while ``outstanding() > 0`` — and handles policy (stealing,
    fail-fast, fallback) itself, so a transport implements mechanics
    only.  Implementations today run inline or on a local process pool;
    a multi-host transport needs nothing beyond this interface because
    items carry paths (shared journal, shared cache), never live handles.
    """

    name = "abstract"
    slots = 1

    def start(self) -> None:
        """Acquire execution resources (may raise; scheduler degrades)."""

    def submit(self, item: WorkItem) -> None:
        raise NotImplementedError

    def next_result(self) -> WorkResult:
        raise NotImplementedError

    def outstanding(self) -> int:
        raise NotImplementedError

    def close(self, *, cancel: bool = False) -> None:
        """Release resources; ``cancel`` abandons queued work (fail-fast)."""


class InlineTransport(WorkerTransport):
    """Executes items synchronously in the scheduling process.

    Used for ``workers=1``, single-job campaigns, and as the degradation
    target when a process pool cannot start or dies mid-run (result-
    identical by construction).  Items run against the *live* cache and
    journal writer, so telemetry spans land directly in the ambient
    session and cache stats accrue in place — no shipping needed.
    """

    name = "inline"
    slots = 1

    def __init__(
        self,
        *,
        cache: Optional[ResultCache] = None,
        journal: Optional[jrnl.JournalWriter] = None,
    ):
        self.cache = cache
        self.journal = journal
        self._done: Deque[WorkResult] = deque()

    def submit(self, item: WorkItem) -> None:
        self._done.append(
            execute_work_item(item, journal=self.journal, cache=self.cache)
        )

    def next_result(self) -> WorkResult:
        return self._done.popleft()

    def outstanding(self) -> int:
        return len(self._done)

    def close(self, *, cancel: bool = False) -> None:
        self._done.clear()


class ProcessPoolTransport(WorkerTransport):
    """Executes items on a local ``ProcessPoolExecutor``.

    ``submit`` feeds one item per call (the scheduler's stealing loop
    decides what runs next, unlike the runner's batch ``pool.map``);
    ``next_result`` blocks on the first completed future.  Pool-level
    failures (``BrokenExecutor``) propagate to the scheduler, which
    re-runs uncollected items inline.
    """

    name = "process-pool"

    def __init__(self, workers: int):
        if workers < 1:
            raise ReproError(f"transport workers must be >= 1, got {workers}")
        self.workers = workers
        self.slots = workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._futures: Set[Future] = set()

    def start(self) -> None:
        if self._pool is None:
            pool = ProcessPoolExecutor(max_workers=self.workers)
            # Surface spawn failures now, not at first submit: submitting
            # a no-op forces worker startup on platforms that lazily fork.
            pool.submit(int).result()
            self._pool = pool

    def submit(self, item: WorkItem) -> None:
        if self._pool is None:
            self.start()
        self._futures.add(self._pool.submit(_scheduler_worker, item))

    def next_result(self) -> WorkResult:
        if not self._futures:
            raise ReproError("next_result() with no outstanding work")
        done, self._futures = wait(self._futures, return_when=FIRST_COMPLETED)
        first = done.pop()
        self._futures |= done  # completed-but-unconsumed go back in the set
        return first.result()

    def outstanding(self) -> int:
        return len(self._futures)

    def close(self, *, cancel: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=not cancel, cancel_futures=cancel)
            self._pool = None
        self._futures.clear()


class ShardedCampaignScheduler:
    """Sharded, work-stealing, crash-resumable campaign executor.

    Accepts the :class:`~repro.campaign.runner.CampaignRunner` policy
    surface (cache, retries, keep-going, backoff, journal, timeline) plus
    the sharding knobs, and produces the same
    :class:`~repro.campaign.runner.CampaignResult` — manifests from both
    executors are fingerprint-identical for the same jobs.

    Parameters
    ----------
    workers:
        Worker-slot count.  ``1`` runs inline; more uses a process pool
        (or the supplied ``transport``).
    shards:
        Shard count for the deterministic plan; ``0`` (default) means one
        shard per worker slot.
    cache:
        The shared :class:`ResultCache`.  Optional for plain runs,
        *required* for resume — the journal records what finished, the
        cache holds the payloads.
    journal:
        Flight-recorder target: a path (scheduler-owned, finalized here)
        or a caller-owned :class:`~repro.journal.JournalWriter`.
        Required for resume.
    transport:
        A :class:`WorkerTransport` to execute on, overriding the
        inline/process-pool choice (the multi-host hook).
    retries / keep_going / backoff_s / backoff_seed / timeline:
        Exactly as on :class:`~repro.campaign.runner.CampaignRunner`.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        shards: int = 0,
        cache: Optional[ResultCache] = None,
        retries: int = 0,
        keep_going: bool = False,
        backoff_s: float = 0.0,
        backoff_seed: int = 0,
        journal: Optional[Union[str, Path, jrnl.JournalWriter]] = None,
        timeline: Optional[Union[str, Path]] = None,
        transport: Optional[WorkerTransport] = None,
    ):
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if shards < 0:
            raise ReproError(f"shards must be >= 0 (0 = one per worker), got {shards}")
        if retries < 0:
            raise ReproError(f"retries must be >= 0, got {retries}")
        if backoff_s < 0:
            raise ReproError(f"backoff_s must be >= 0, got {backoff_s}")
        self.workers = workers
        self.shards = shards
        self.cache = cache
        self.retries = retries
        self.keep_going = keep_going
        self.backoff_s = backoff_s
        self.backoff_seed = backoff_seed
        self.journal = journal
        self.timeline = Path(timeline) if timeline is not None else None
        self.transport = transport
        # The in-flight journal writer, visible to _work_items/_make_transport
        # for the duration of one run() call only.
        self._live_writer: Optional[jrnl.JournalWriter] = None

    # ------------------------------------------------------------------
    def _journal_path(self) -> Optional[Path]:
        if self.journal is None:
            return None
        if isinstance(self.journal, jrnl.JournalWriter):
            return self.journal.path
        return Path(self.journal)

    def _resume_state(
        self, jobs: Sequence[CampaignJob], keys: Sequence[str]
    ) -> jrnl.RunState:
        """Replay the journal being resumed, guarding campaign identity."""
        if self.journal is None:
            raise ReproError(
                "resume needs a journal: pass journal=<path of the run to resume>"
            )
        if self.cache is None:
            raise ReproError(
                "resume needs the shared result cache: the journal records what "
                "finished; the cache holds the payloads"
            )
        path = self._journal_path()
        if not path.exists():
            raise ReproError(f"cannot resume: journal {path} does not exist")
        state = jrnl.replay(jrnl.read_events(path))
        if not state.started:
            raise ReproError(
                f"cannot resume: journal {path} has no run.start event"
            )
        by_id = {job.job_id: key for job, key in zip(jobs, keys)}
        for job_id, job_state in state.jobs.items():
            if job_id not in by_id:
                raise ReproError(
                    f"cannot resume: journal {path} schedules job {job_id!r}, "
                    "which is not in this campaign's job list"
                )
            if job_state.key and job_state.key != by_id[job_id]:
                raise ReproError(
                    f"cannot resume: job {job_id!r} is keyed "
                    f"{job_state.key[:12]}... in the journal but "
                    f"{by_id[job_id][:12]}... now — the job definition changed "
                    "between the crashed run and this one"
                )
        return state

    def _journal_writer(
        self, label: str, prior: Optional[jrnl.RunState]
    ) -> Tuple[Optional[jrnl.JournalWriter], bool]:
        """The run's writer plus ownership; resumes reuse the prior run id."""
        if self.journal is None:
            return None, False
        if isinstance(self.journal, jrnl.JournalWriter):
            return self.journal, False
        run_id = prior.run_id if prior is not None and prior.run_id else None
        return (
            jrnl.JournalWriter(self._journal_path(), label=label, run_id=run_id),
            True,
        )

    def _num_shards(self) -> int:
        return self.shards if self.shards else max(1, self.workers)

    def _make_transport(self, pending: int) -> WorkerTransport:
        if self.transport is not None:
            return self.transport
        if self.workers > 1 and pending > 1:
            return ProcessPoolTransport(min(self.workers, pending))
        return InlineTransport(cache=self.cache, journal=self._live_writer)

    # ------------------------------------------------------------------
    def run(
        self,
        jobs: Sequence[CampaignJob],
        *,
        label: str = "campaign",
        resume: bool = False,
    ) -> CampaignResult:
        """Execute (or resume) the campaign; returns outcomes plus manifest.

        With ``resume=True`` the journal must already exist: its events
        are replayed first, recovered jobs are served from the shared
        cache without re-execution, and the remainder is re-sharded and
        re-dispatched while the same journal file grows under the
        original run id.  Failure policy matches the runner: fail-fast
        raises :class:`~repro.exceptions.CampaignExecutionError` (after
        finalizing a scheduler-owned journal as ``aborted``); keep-going
        records the damage and returns.
        """
        jobs = check_jobs(jobs)
        if self.timeline is not None:
            self.timeline.mkdir(parents=True, exist_ok=True)

        with tele.span("campaign.run", label=label, jobs=len(jobs)):
            keys: List[str] = []
            for job in jobs:
                with tele.span("job.serialize", job=job.job_id):
                    keys.append(cache_key(job))

            prior = self._resume_state(jobs, keys) if resume else None
            prior_terminal = set()
            if prior is not None:
                prior_terminal = {
                    job_id
                    for job_id, job_state in prior.jobs.items()
                    if job_state.status in ("completed", "cached")
                }

            writer, owns_writer = self._journal_writer(label, prior)
            self._live_writer = writer
            num_shards = self._num_shards()
            attached_ambient = False
            if writer is not None and jrnl.ambient() is None:
                jrnl.attach(writer)
                attached_ambient = True

            t_start = time.perf_counter()
            invalidations_before = self.cache.stats.invalidations if self.cache is not None else 0
            stolen = 0
            recovered = 0
            workers_used = 1
            transport_name = "inline"
            try:
                if writer is not None and prior is None:
                    writer.emit(
                        "run.start",
                        label=label,
                        jobs=len(jobs),
                        workers=self.workers,
                        retries_allowed=self.retries,
                        keep_going=self.keep_going,
                        cache_enabled=self.cache is not None,
                        shards=num_shards,
                    )
                if writer is not None:
                    for index, (job, key) in enumerate(zip(jobs, keys)):
                        writer.emit(
                            "job.scheduled", job=job.job_id, key=key, index=index
                        )

                payloads: Dict[int, Dict] = {}
                statuses: Dict[int, str] = {}
                walls: Dict[int, float] = {}
                errors: Dict[int, Dict] = {}
                attempts: Dict[int, int] = {}

                pending: List[int] = []
                for index, key in enumerate(keys):
                    job_id = jobs[index].job_id
                    with tele.span(
                        "job.cache_probe", job=job_id, skipped=self.cache is None
                    ):
                        if self.cache is not None:
                            t0 = time.perf_counter()
                            cached = self.cache.get(key)
                            if cached is not None:
                                payloads[index] = cached
                                statuses[index] = "hit"
                                walls[index] = time.perf_counter() - t0
                                attempts[index] = 0
                                if job_id in prior_terminal:
                                    recovered += 1
                                if writer is not None:
                                    writer.emit(
                                        "job.cache_hit",
                                        job=job_id,
                                        key=key,
                                        attempt=0,
                                    )
                                continue
                    pending.append(index)

                if writer is not None and prior is not None:
                    writer.emit(
                        "run.resumed",
                        jobs_recovered=recovered,
                        jobs_pending=len(pending),
                        shards=num_shards,
                    )

                plan = plan_shards([keys[i] for i in pending], num_shards)
                if writer is not None:
                    for shard, members in enumerate(plan.assignments):
                        writer.emit("shard.planned", shard=shard, jobs=len(members))

                if pending:
                    items = self._work_items(jobs, keys, pending, plan)
                    results, stolen, workers_used, transport_name = self._dispatch(
                        items, writer
                    )
                    for result in results.values():
                        index = result.index
                        walls[index] = result.wall_s
                        attempts[index] = result.attempts
                        statuses[index] = result.cache_status
                        if result.error is not None:
                            errors[index] = result.error
                        else:
                            payloads[index] = result.payload
                        if result.cache_stats and self.cache is not None:
                            # Worker-side cache objects saw the traffic;
                            # fold their deltas into the parent's books.
                            self.cache.stats.hits += result.cache_stats["hits"]
                            self.cache.stats.misses += result.cache_stats["misses"]
                            self.cache.stats.invalidations += result.cache_stats[
                                "invalidations"
                            ]
                            self.cache.stats.puts += result.cache_stats["puts"]

                failed = [i for i in pending if i in errors]
                # Jobs the fail-fast stop never dispatched: keep runner
                # vocabulary — no payload, no error, zero attempts.
                for index in pending:
                    if index not in statuses:
                        statuses[index] = "failed" if index in errors else "uncached"
                        if index not in attempts:
                            attempts[index] = 0
                        if index not in walls:
                            walls[index] = 0.0
                if failed and not self.keep_going:
                    failures = [
                        {"job_id": jobs[i].job_id, "error": errors[i]} for i in failed
                    ]
                    first = failures[0]
                    raise CampaignExecutionError(
                        f"{len(failed)} of {len(jobs)} campaign job(s) failed "
                        f"(first: {first['job_id']} — {first['error']['type']}: "
                        f"{first['error']['message']}); rerun with keep_going=True "
                        "to collect the surviving jobs",
                        failures=failures,
                    )

                if tele.active():
                    for index in range(len(jobs)):
                        tele.count("tgi_campaign_jobs_total", status=statuses[index])
                    retries_total = sum(
                        max(0, attempts.get(i, 1) - 1) for i in pending
                    )
                    if failed:
                        tele.count("tgi_campaign_jobs_failed_total", len(failed))
                    if retries_total:
                        tele.count("tgi_campaign_jobs_retried_total", retries_total)
                    if stolen:
                        tele.count("tgi_campaign_jobs_stolen_total", stolen)
            except CampaignExecutionError as exc:
                if writer is not None and owns_writer:
                    writer.finalize(
                        status="aborted",
                        jobs_failed=len(exc.failures),
                        total_wall_s=time.perf_counter() - t_start,
                    )
                raise
            finally:
                if attached_ambient:
                    jrnl.detach()
                self._live_writer = None

        total_wall = time.perf_counter() - t_start
        outcomes = [
            JobOutcome(
                job=jobs[i],
                key=keys[i],
                payload=payloads.get(i),
                cache_status=statuses[i],
                wall_s=walls.get(i, 0.0),
                status="failed" if i in errors else "ok",
                error=errors.get(i),
                attempts=attempts.get(i, 1),
            )
            for i in range(len(jobs))
        ]
        invalidations = (
            self.cache.stats.invalidations - invalidations_before if self.cache is not None else 0
        )
        journal_info = None
        if writer is not None:
            jobs_failed_total = sum(1 for o in outcomes if not o.ok)
            journal_info = {
                "path": str(writer.path),
                "run_id": writer.run_id,
                "events": writer.events_written,
                "sha256": None,
            }
            if owns_writer:
                summary = writer.finalize(
                    status="ok" if not jobs_failed_total else "failed",
                    jobs_failed=jobs_failed_total,
                    total_wall_s=total_wall,
                )
                journal_info["events"] = summary["events"]
                journal_info["sha256"] = summary["sha256"]
        timeline_info = None
        if self.timeline is not None:
            from .. import timeline as tline

            artifacts = sorted(self.timeline.glob("*.timeline.json"))
            timeline_info = {
                "dir": str(self.timeline),
                "artifacts": len(artifacts),
                "version": tline.TIMELINE_SCHEMA_VERSION,
            }
        manifest = build_manifest(
            label=label,
            outcomes=outcomes,
            total_wall=total_wall,
            workers_requested=self.workers,
            workers_used=workers_used,
            cache=self.cache,
            retries_allowed=self.retries,
            keep_going=self.keep_going,
            invalidations=invalidations,
            journal_info=journal_info,
            timeline_info=timeline_info,
            extra={
                "sharding": {
                    "shards": num_shards,
                    "plan": [
                        [jobs[pending[p]].job_id for p in members]
                        for members in plan.assignments
                    ],
                    "transport": transport_name,
                    "stolen": stolen,
                    "resumed": prior is not None,
                    "jobs_recovered": recovered,
                }
            },
        )
        return CampaignResult(outcomes, manifest)

    # ------------------------------------------------------------------
    def _work_items(
        self,
        jobs: Sequence[CampaignJob],
        keys: Sequence[str],
        pending: Sequence[int],
        plan: ShardPlan,
    ) -> List[WorkItem]:
        """Materialize work items for the pending jobs, shard-annotated."""
        writer = self._live_writer
        journal_path = str(writer.path) if writer is not None else None
        run_id = writer.run_id if writer is not None else None
        shard_by_position = {}
        for shard, members in enumerate(plan.assignments):
            for position in members:
                shard_by_position[position] = shard
        return [
            WorkItem(
                index=index,
                shard=shard_by_position[position],
                job=jobs[index],
                key=keys[index],
                retries=self.retries,
                backoff_s=self.backoff_s,
                backoff_seed=self.backoff_seed,
                with_telemetry=tele.current() is not None,
                journal_path=journal_path,
                run_id=run_id,
                timeline_dir=str(self.timeline) if self.timeline else None,
                cache_dir=str(self.cache.directory) if self.cache is not None else None,
                code_version=self.cache.code_version if self.cache is not None else None,
            )
            for position, index in enumerate(pending)
        ]

    def _dispatch(
        self, items: List[WorkItem], writer: Optional[jrnl.JournalWriter]
    ) -> Tuple[Dict[int, WorkResult], int, int, str]:
        """Drive the transport to drain all items; the stealing loop.

        Returns ``(results by job index, steals, workers used, transport
        name)``.  Worker slots keep a home-shard affinity: a finished
        slot refills from the shard of the item it just completed and
        steals from the deepest backlog once that shard drains
        (``job.stolen`` events).  Fail-fast stops refilling on the first
        exhausted job but still collects everything in flight, so no
        completed work is dropped.  A pool that cannot start (or dies
        mid-run) degrades to inline execution for the uncollected
        remainder — result-identical, like the runner's fallback.
        """
        session = tele.current()
        transport = self._make_transport(len(items))
        is_inline = isinstance(transport, InlineTransport)
        if not is_inline:
            try:
                transport.start()
            except (OSError, PermissionError, ImportError, BrokenExecutor):
                transport.close(cancel=True)
                transport = InlineTransport(cache=self.cache, journal=writer)
                is_inline = True
        workers_used = 1 if is_inline else min(transport.slots, len(items))

        backlog: Dict[int, Deque[WorkItem]] = {}
        for item in items:
            backlog.setdefault(item.shard, deque()).append(item)

        stolen = 0
        results: Dict[int, WorkResult] = {}
        stop_refill = False

        def take(home: int) -> Optional[WorkItem]:
            nonlocal stolen
            queue = backlog.get(home)
            if queue:
                return queue.popleft()
            donors = [shard for shard, queue in backlog.items() if queue]
            if not donors:
                return None
            # Steal from the deepest backlog (ties: lowest shard id),
            # taking from the tail so the victim's head stays local.
            donor = max(donors, key=lambda shard: (len(backlog[shard]), -shard))
            item = backlog[donor].pop()
            stolen += 1
            if writer is not None:
                writer.emit(
                    "job.stolen",
                    job=item.job.job_id,
                    from_shard=item.shard,
                    by_shard=home,
                )
            return item

        with tele.span(
            "campaign.shards",
            transport=transport.name,
            workers=workers_used,
            jobs=len(items),
        ) as shards_span:
            try:
                homes = sorted(shard for shard, queue in backlog.items() if queue)
                for slot in range(min(max(1, transport.slots), len(items))):
                    item = take(homes[slot % len(homes)])
                    if item is None:
                        break
                    transport.submit(item)
                while transport.outstanding():
                    result = transport.next_result()
                    results[result.index] = result
                    if session is not None and result.spans:
                        session.tracer.absorb(
                            result.spans,
                            parent_id=shards_span.span_id,
                            offset_s=shards_span.t_start,
                        )
                    if session is not None and result.metrics:
                        session.metrics.merge(result.metrics)
                    if result.error is not None and not self.keep_going:
                        stop_refill = True
                    if not stop_refill:
                        item = take(result.shard)
                        if item is not None:
                            transport.submit(item)
                transport.close(cancel=stop_refill)
            except BrokenExecutor:
                # The pool died under us: abandon it and finish every
                # uncollected item inline (the runner's degradation
                # contract, re-executing only what never came back).
                transport.close(cancel=True)
                leftovers = [it for it in items if it.index not in results]
                if tele.active() and leftovers:
                    tele.count(
                        "tgi_campaign_pool_fallback_total",
                        resumed_jobs=len(leftovers),
                    )
                inline = InlineTransport(cache=self.cache, journal=writer)
                for item in leftovers:
                    if stop_refill:
                        break
                    inline.submit(item)
                    result = inline.next_result()
                    results[result.index] = result
                    if result.error is not None and not self.keep_going:
                        stop_refill = True
        return results, stolen, workers_used, transport.name
