"""Machine-readable run manifests.

Every campaign writes (or at least builds) a manifest: which jobs ran,
under which cache keys, what each cost, what the payloads hashed to, and
how the cache behaved.  Two campaigns that did the same *work* produce
manifests that agree on everything except execution circumstances — wall
times, timestamps, worker counts, cache statuses — so reproducibility
checks reduce to comparing :func:`manifest_core` (the manifest with the
volatile fields stripped) byte-for-byte, or just :func:`manifest_fingerprint`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from ..exceptions import ReproError
from ..serialization import atomic_write_text
from .cache import cache_key

__all__ = [
    "MANIFEST_VERSION",
    "VOLATILE_CAMPAIGN_FIELDS",
    "VOLATILE_JOB_FIELDS",
    "manifest_core",
    "manifest_fingerprint",
    "write_manifest",
    "load_manifest",
]

#: Schema version written into every manifest.
MANIFEST_VERSION = 1

#: Top-level fields that describe *how* a campaign ran, not *what* it computed.
VOLATILE_CAMPAIGN_FIELDS = (
    "created_unix",
    "total_wall_s",
    "workers_requested",
    "workers_used",
    "cache",
    "cache_run",
    "cache_enabled",
    # Observability summary: spans/metrics describe execution, never results.
    "telemetry",
    # Flight-recorder block: journal path/digest/event count describe one
    # specific execution; journaled and bare runs must fingerprint alike.
    "journal",
    # Power-timeline block: artifact directory and count describe where
    # observability output landed; captured and bare runs must
    # fingerprint alike.
    "timeline",
    # Failure accounting: a warm cache skips executions, so retry counts
    # differ between cold and warm runs of the same campaign.
    "failures",
    # Sharded-scheduler block: shard plan, transport, steal/recovery
    # counts describe one execution; sharded, resumed, and plain-runner
    # runs of the same jobs must fingerprint alike.
    "sharding",
    # Not volatile, but derived from the core — excluded so that
    # recomputing manifest_fingerprint(manifest) reproduces the stored one.
    "fingerprint",
)

#: Per-job fields that vary run-to-run without the results changing.
#: ``attempts`` depends on cache warmth; ``error`` tracebacks differ
#: between the pool and serial call stacks.  ``status`` is *not* here —
#: whether a job succeeded is part of what the campaign computed.
VOLATILE_JOB_FIELDS = ("wall_s", "cache_status", "attempts", "error")


def manifest_core(manifest: Dict) -> Dict:
    """The reproducible core of a manifest: volatile fields removed.

    Serial vs. parallel runs, and cold vs. warm-cache runs, of the same
    campaign have identical cores (the determinism contract the test tier
    enforces).
    """
    core = {k: v for k, v in manifest.items() if k not in VOLATILE_CAMPAIGN_FIELDS}
    core["jobs"] = [
        {k: v for k, v in job.items() if k not in VOLATILE_JOB_FIELDS}
        for job in manifest.get("jobs", [])
    ]
    return core


def manifest_fingerprint(manifest: Dict) -> str:
    """SHA-256 over the canonical JSON of :func:`manifest_core`."""
    return cache_key(manifest_core(manifest))


def write_manifest(manifest: Dict, path: Union[str, Path]) -> None:
    """Write a manifest as stable, human-diffable JSON (atomically)."""
    atomic_write_text(Path(path), json.dumps(manifest, indent=2, sort_keys=True) + "\n")


def load_manifest(path: Union[str, Path]) -> Dict:
    """Read a manifest back, checking the schema version."""
    manifest = json.loads(Path(path).read_text())
    version = manifest.get("manifest_version")
    if version != MANIFEST_VERSION:
        raise ReproError(
            f"manifest version {version!r} not supported "
            f"(this library reads version {MANIFEST_VERSION})"
        )
    return manifest
