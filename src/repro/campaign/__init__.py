"""Campaign execution: parallel fan-out, result caching, run manifests.

Every interesting study in this repository — weight sensitivity, DVFS
sweeps, Green500-style lists, reference-system sensitivity — is an
O(systems x benchmarks x configs) *campaign* of independent measurements.
This package is the substrate that runs them at scale:

:mod:`~repro.campaign.jobs`
    :class:`CampaignJob` / :class:`ClusterRef` — pure, picklable units of
    work — and :func:`execute_job`, the single function both the process
    pool and the cache address.
:mod:`~repro.campaign.cache`
    :class:`ResultCache` — content-addressed on-disk payload cache with
    hit/miss/invalidation accounting.
:mod:`~repro.campaign.runner`
    :class:`CampaignRunner` — the pool/serial executor — and
    :class:`CampaignResult`.
:mod:`~repro.campaign.manifest`
    Machine-readable run manifests and their reproducibility fingerprint.
:mod:`~repro.campaign.scheduler`
    :class:`ShardedCampaignScheduler` — deterministic sharding, work
    stealing, and journal-replay crash resume over a transport-shaped
    worker API (see ``docs/distributed_campaigns.md``).

Quick tour:

>>> from repro.campaign import CampaignRunner, ResultCache, fleet_jobs
>>> runner = CampaignRunner(workers=4, cache=ResultCache("~/.cache/tgi"))
>>> result = runner.run(fleet_jobs(50))          # doctest: +SKIP
>>> result.manifest["cache_run"]["hit_rate"]     # doctest: +SKIP
"""

from .cache import CacheStats, ResultCache, cache_key, canonical_json
from .jobs import (
    CampaignJob,
    ClusterRef,
    execute_job,
    fleet_jobs,
    job_from_dict,
    job_to_dict,
    paper_jobs,
    payload_sweep,
)
from .manifest import (
    MANIFEST_VERSION,
    load_manifest,
    manifest_core,
    manifest_fingerprint,
    write_manifest,
)
from .runner import (
    CampaignResult,
    CampaignRunner,
    JobOutcome,
    build_manifest,
    check_jobs,
    run_cache_stats,
)
from .scheduler import (
    InlineTransport,
    ProcessPoolTransport,
    ShardedCampaignScheduler,
    ShardPlan,
    WorkerTransport,
    WorkItem,
    WorkResult,
    execute_work_item,
    plan_shards,
    shard_of,
)

__all__ = [
    "CacheStats",
    "ResultCache",
    "cache_key",
    "canonical_json",
    "CampaignJob",
    "ClusterRef",
    "execute_job",
    "fleet_jobs",
    "job_from_dict",
    "job_to_dict",
    "paper_jobs",
    "payload_sweep",
    "MANIFEST_VERSION",
    "load_manifest",
    "manifest_core",
    "manifest_fingerprint",
    "write_manifest",
    "CampaignResult",
    "CampaignRunner",
    "JobOutcome",
    "run_cache_stats",
    "check_jobs",
    "build_manifest",
    "shard_of",
    "ShardPlan",
    "plan_shards",
    "WorkItem",
    "WorkResult",
    "execute_work_item",
    "WorkerTransport",
    "InlineTransport",
    "ProcessPoolTransport",
    "ShardedCampaignScheduler",
]
