"""The campaign executor: fan jobs out, consult the cache, keep the books.

:class:`CampaignRunner` takes a list of :class:`~repro.campaign.jobs.CampaignJob`
and produces a :class:`CampaignResult`:

1. every job is keyed by the SHA-256 of its canonical serialization;
2. keyed jobs are probed against the (optional) on-disk
   :class:`~repro.campaign.cache.ResultCache` — hits skip execution;
3. the remaining jobs run on a ``concurrent.futures`` process pool
   (``workers > 1``) or inline (``workers == 1``, and automatically as a
   fallback when the platform cannot spawn a pool);
4. each outcome records wall time and cache status, and the whole run is
   summarized in a machine-readable manifest (see
   :mod:`repro.campaign.manifest`).

Ordering is part of the contract: outcomes and manifest rows follow job
submission order, never completion order, so parallel runs are manifest-
identical to serial runs modulo the volatile timing fields.

Failure containment
-------------------
Each job attempt executes under a try/except boundary in both the pool and
the serial paths: an exception fails *that job*, never the campaign.  A
failed job's outcome carries ``status="failed"`` and a structured ``error``
(exception type, message, truncated traceback).  ``retries`` re-attempts a
failed job with seeded exponential backoff; a success on retry yields the
same payload a clean run would (each attempt executes with a freshly
seeded executor), so caching stays sound.  The failure *policy* is the
runner's: ``keep_going=False`` (default, matching the historical abort
behaviour) raises :class:`~repro.exceptions.CampaignExecutionError` once a
job exhausts its retries; ``keep_going=True`` finishes the surviving jobs
and returns a result whose manifest records the damage — the input to the
partial-TGI path (see :mod:`repro.core.tgi`).

When a telemetry session is active (:mod:`repro.telemetry`) the runner
traces each job's lifecycle — ``job.serialize`` → ``job.cache_probe`` →
``job.execute`` (one span per attempt) → ``job.store`` — and counts jobs,
failures, retries, and cache behaviour into the metrics registry.  Pool
workers collect spans and metrics in their own process and ship them back
beside the payload; the parent absorbs worker spans under its
``campaign.pool`` span and merges worker metric state.  Telemetry never
touches payloads, cache keys, or manifest fingerprints: runs are
byte-identical with telemetry on or off.

Flight recorder
---------------
``journal=`` arms the append-only run journal (:mod:`repro.journal`): the
parent records the run lifecycle, schedule, and cache hits; whichever
process executes a job appends its attempt-level events (start, contained
failure, retry, completion with ``getrusage`` CPU/RSS accounting) to the
*same* file via atomic ``O_APPEND`` line writes, so ``tgi watch`` can
follow an in-flight campaign from another process.  The manifest records
the journal's path, run id, and content digest as a volatile block —
like telemetry, journaling never changes payloads or fingerprints.
"""

from __future__ import annotations

import os
import time
import traceback as traceback_module
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import journal as jrnl
from .. import telemetry as tele
from .. import timeline as tline
from ..benchmarks.runner import SweepResult
from ..benchmarks.suite import SuiteResult
from ..exceptions import CampaignExecutionError, ReproError
from ..rng import child_rng
from .cache import ResultCache, cache_key
from .jobs import CampaignJob, execute_job, job_to_dict, payload_sweep
from .manifest import MANIFEST_VERSION, manifest_fingerprint, write_manifest

__all__ = [
    "JobOutcome",
    "CampaignResult",
    "CampaignRunner",
    "run_cache_stats",
    "check_jobs",
    "build_manifest",
    "TRACEBACK_LIMIT_CHARS",
]

#: Cache statuses a job outcome can carry.
CACHE_STATUSES = ("hit", "computed", "uncached", "failed")

#: Structured-error tracebacks are tail-truncated to this many characters
#: (the tail names the raising frame; the head is usually pool plumbing).
TRACEBACK_LIMIT_CHARS = 4000


def _error_info(exc: BaseException) -> Dict[str, str]:
    """Structured record of a contained job failure."""
    tb = "".join(
        traceback_module.format_exception(type(exc), exc, exc.__traceback__)
    )
    if len(tb) > TRACEBACK_LIMIT_CHARS:
        tb = "...(truncated)...\n" + tb[-TRACEBACK_LIMIT_CHARS:]
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": tb,
    }


def _retry_delay(base_s: float, attempt: int, seed: int, scope: str) -> float:
    """Seconds to wait before retry ``attempt`` (1-based) of one job.

    Seeded exponential backoff with jitter: ``base * 2**(attempt-1)``
    scaled by a uniform factor in ``[0.5, 1.5)`` drawn from a named stream,
    so a retrying fleet does not thunder in lockstep yet tests can pin the
    exact delays.  A non-positive base disables waiting entirely.
    """
    if base_s <= 0.0:
        return 0.0
    jitter = float(child_rng(seed, f"retry:{scope}:{attempt}").uniform(0.5, 1.5))
    return base_s * (2.0 ** (attempt - 1)) * jitter


#: Journal error messages are clipped to this length (tracebacks live in
#: the outcome's structured error, not in the event stream).
_JOURNAL_MESSAGE_LIMIT = 500


def check_jobs(jobs: Sequence[CampaignJob]) -> List[CampaignJob]:
    """Validate a campaign's job list (non-empty, unique ids); returns it.

    Shared by :class:`CampaignRunner` and the sharded scheduler
    (:mod:`repro.campaign.scheduler`) so both reject malformed campaigns
    with identical errors.
    """
    jobs = list(jobs)
    if not jobs:
        raise ReproError("campaign needs at least one job")
    ids = [job.job_id for job in jobs]
    if len(set(ids)) != len(ids):
        dupes = sorted({i for i in ids if ids.count(i) > 1})
        raise ReproError(f"duplicate job ids in campaign: {dupes}")
    return jobs


def _attempt_job(
    job: CampaignJob,
    *,
    retries: int = 0,
    backoff_s: float = 0.0,
    backoff_seed: int = 0,
    journal: Optional[jrnl.JournalWriter] = None,
    timeline_dir: Optional[Path] = None,
) -> Tuple[Optional[Dict], Optional[Dict], int, float]:
    """Run one job with containment and retries.

    Returns ``(payload, error, attempts, wall_s)`` — exactly one of
    ``payload``/``error`` is non-``None``.  ``wall_s`` sums the execution
    time of every attempt and excludes backoff sleeps, so it reflects work
    done, not policy.  ``KeyboardInterrupt`` (and other non-``Exception``
    escapes) propagate: containment is for job failures, not for the
    operator's ctrl-C.

    With ``journal`` set, every attempt's lifecycle lands in the run
    journal — start, contained failure, retry decision (with the chosen
    backoff), and the terminal completed/failed event carrying the
    ``getrusage`` CPU/RSS accounting of the executing process.

    With ``timeline_dir`` set, each attempt arms the ambient power-
    timeline sink (:mod:`repro.timeline`) around the execution; the
    *successful* attempt's captured run timelines are summarized into
    ``<timeline_dir>/<job_id>.timeline.json`` (atomic write), and a
    ``timeline.captured`` pointer event lands in the journal.  Failed
    attempts discard their partial captures.
    """
    error: Optional[Dict] = None
    wall = 0.0
    ru_start = jrnl.rusage_fields() if journal is not None else None
    for attempt in range(retries + 1):
        if attempt:
            delay = _retry_delay(backoff_s, attempt, backoff_seed, job.job_id)
            if journal is not None:
                journal.emit(
                    "job.retried", job=job.job_id, attempt=attempt, delay_s=delay
                )
            if delay > 0.0:
                time.sleep(delay)
        if journal is not None:
            journal.emit("job.started", job=job.job_id, attempt=attempt)
        t0 = time.perf_counter()
        try:
            with tele.span("job.execute", job=job.job_id, attempt=attempt):
                if timeline_dir is not None:
                    with tline.collecting() as captured:
                        payload = execute_job(job, attempt=attempt)
                else:
                    captured = []
                    payload = execute_job(job, attempt=attempt)
            wall += time.perf_counter() - t0
            if timeline_dir is not None and captured:
                artifact = tline.write_job_artifact(
                    timeline_dir, job_id=job.job_id, timelines=captured
                )
                if journal is not None:
                    journal.emit(
                        "timeline.captured",
                        job=job.job_id,
                        path=str(artifact),
                        runs=len(captured),
                        energy_j=float(
                            sum(tl.true_energy_j for tl in captured)
                        ),
                    )
            if journal is not None:
                journal.emit(
                    "job.completed",
                    job=job.job_id,
                    attempts=attempt + 1,
                    wall_s=wall,
                    **jrnl.rusage_delta(ru_start),
                )
            return payload, None, attempt + 1, wall
        except Exception as exc:  # containment boundary — one job, not the run
            attempt_wall = time.perf_counter() - t0
            wall += attempt_wall
            error = _error_info(exc)
            if journal is not None:
                journal.emit(
                    "job.attempt_failed",
                    job=job.job_id,
                    attempt=attempt,
                    error_type=error["type"],
                    error_message=error["message"][:_JOURNAL_MESSAGE_LIMIT],
                    wall_s=attempt_wall,
                )
    if journal is not None:
        journal.emit(
            "job.failed",
            job=job.job_id,
            attempts=retries + 1,
            error_type=error["type"],
            error_message=error["message"][:_JOURNAL_MESSAGE_LIMIT],
        )
    return None, error, retries + 1, wall


def run_cache_stats(
    statuses: Sequence[str],
    *,
    executions: Optional[Sequence[int]] = None,
    invalidations: int = 0,
) -> Dict[str, float]:
    """Run-level cache accounting from per-job cache statuses.

    The single source for ``CampaignResult.cache_stats``, the manifest's
    ``cache_run`` block, and the CLI summary.  Accounting is per
    *attempt*, not per job: ``hits`` are probe hits, ``misses`` are
    executed attempts (a job that succeeded on its third attempt was three
    misses of work, not one), so ``hits + misses == attempts`` holds by
    construction.  ``executions`` carries the per-job execution counts
    aligned with ``statuses``; omitted, every non-hit job is assumed to
    have executed exactly once (the retry-free behaviour).
    """
    jobs = len(statuses)
    hits = sum(1 for s in statuses if s == "hit")
    if executions is None:
        misses = jobs - hits
    else:
        if len(executions) != jobs:
            raise ReproError(
                f"executions has {len(executions)} entries for {jobs} statuses"
            )
        misses = int(sum(executions))
    attempts = hits + misses
    return {
        "jobs": jobs,
        "attempts": attempts,
        "hits": hits,
        "misses": misses,
        "invalidations": invalidations,
        "hit_rate": hits / attempts if attempts else 0.0,
    }


@dataclass(frozen=True)
class JobOutcome:
    """One job's result plus its execution record.

    ``status`` is ``"ok"`` or ``"failed"``; a failed outcome has
    ``payload=None`` and a structured ``error`` dict (``type``,
    ``message``, ``traceback``).  ``attempts`` counts executions of the
    job this run (0 for a cache hit — nothing executed).
    """

    job: CampaignJob
    key: str
    payload: Optional[Dict]
    cache_status: str  # one of CACHE_STATUSES
    wall_s: float
    status: str = "ok"
    error: Optional[Dict] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """Whether the job produced a payload."""
        return self.status == "ok"

    @property
    def retries(self) -> int:
        """Executions beyond the first (0 when the job ran once or was cached)."""
        return max(0, self.attempts - 1)

    @property
    def sweep(self) -> SweepResult:
        """The job's results as a live sweep object."""
        if self.payload is None:
            error = self.error or {}
            raise ReproError(
                f"job {self.job.job_id!r} failed after {self.attempts} attempt(s) "
                f"({error.get('type', 'unknown')}: {error.get('message', '')}); "
                "no sweep to rebuild"
            )
        return payload_sweep(self.payload)


class CampaignResult:
    """All outcomes of one campaign run, in submission order."""

    def __init__(self, outcomes: Sequence[JobOutcome], manifest: Dict):
        self.outcomes: List[JobOutcome] = list(outcomes)
        self.manifest = manifest
        self._by_id = {o.job.job_id: o for o in self.outcomes}

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    def __getitem__(self, job_id: str) -> JobOutcome:
        try:
            return self._by_id[job_id]
        except KeyError:
            raise KeyError(
                f"no job {job_id!r} in campaign; ran {sorted(self._by_id)}"
            ) from None

    def sweep(self, job_id: str) -> SweepResult:
        """One job's results as a sweep."""
        return self[job_id].sweep

    def suite(self, job_id: str) -> SuiteResult:
        """A single-point job's suite result."""
        sweep = self.sweep(job_id)
        if len(sweep) != 1:
            raise ReproError(
                f"job {job_id!r} has {len(sweep)} scale points; use sweep()"
            )
        return sweep.suites[0]

    @property
    def succeeded(self) -> List[JobOutcome]:
        """Outcomes that produced payloads, in submission order."""
        return [o for o in self.outcomes if o.ok]

    @property
    def failed(self) -> List[JobOutcome]:
        """Outcomes that exhausted their retries, in submission order."""
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        """Whether every job produced a payload."""
        return not self.failed

    @property
    def cache_stats(self) -> Dict[str, float]:
        """Run-level cache accounting (jobs/attempts/hits/misses/...).

        Enforces the accounting invariant: probe hits plus executed
        attempts account for every attempt — a books-must-balance check
        on the retry/cache interplay.
        """
        stats = dict(self.manifest["cache_run"])
        assert stats["hits"] + stats["misses"] == stats["attempts"], (
            f"cache accounting out of balance: {stats['hits']} hits + "
            f"{stats['misses']} misses != {stats['attempts']} attempts"
        )
        return stats

    @property
    def cache_hits(self) -> int:
        """Jobs satisfied from the cache."""
        return int(self.cache_stats["hits"])

    @property
    def hit_rate(self) -> float:
        """Fraction of jobs satisfied from the cache."""
        return float(self.cache_stats["hit_rate"])

    def write_manifest(self, path) -> None:
        """Persist the manifest as JSON."""
        write_manifest(self.manifest, path)


#: Jobs this worker process has finished — heartbeat payload.  Lives at
#: module level so it survives across ``pool.map`` calls into one worker.
_WORKER_JOBS_DONE = 0


def _execute_keyed(args):
    """Pool-side shim: one keyed job in, one contained result out.

    Takes ``(index, job, with_telemetry, retries, backoff_s, backoff_seed,
    journal_path, run_id, timeline_dir)`` and returns ``(index, payload,
    error, attempts, wall_s, spans, metrics)``.  The worker measures its own wall time (the
    parent cannot observe per-job durations through ``pool.map``) and
    contains job exceptions so one bad job never tears down the pool.
    With telemetry requested, the worker collects into its own session and
    ships the finished spans (dict form) and the metric state back with
    the payload; both are ``None`` otherwise.

    Journal events do *not* ship back: with ``journal_path`` set the
    worker opens its own ``O_APPEND`` handle on the shared journal and
    emits attempt events directly, which is what makes ``tgi watch`` live
    rather than end-of-run.  Each pickup also emits a ``worker.heartbeat``
    with the worker's cumulative job count and resource usage.
    """
    global _WORKER_JOBS_DONE
    (
        index,
        job,
        with_telemetry,
        retries,
        backoff_s,
        backoff_seed,
        journal_path,
        run_id,
        timeline_dir,
    ) = args
    timeline_path = Path(timeline_dir) if timeline_dir is not None else None
    journal = None
    if journal_path is not None:
        # A fork-started worker inherits the parent's ambient writer (and
        # its fd); drop the inherited binding and open our own handle so
        # close/lifetime stay per-process.
        jrnl.detach()
        journal = jrnl.JournalWriter(
            journal_path, run_id=run_id, process=f"worker-{os.getpid()}"
        )
        jrnl.attach(journal)
        journal.emit(
            "worker.heartbeat", jobs_done=_WORKER_JOBS_DONE, **jrnl.rusage_fields()
        )
    try:
        if not with_telemetry:
            payload, error, attempts, wall = _attempt_job(
                job,
                retries=retries,
                backoff_s=backoff_s,
                backoff_seed=backoff_seed,
                journal=journal,
                timeline_dir=timeline_path,
            )
            return index, payload, error, attempts, wall, None, None
        # Under the fork start method the worker inherits a *copy* of the
        # parent's ambient session; nothing collected into it would ever
        # ship back, so drop it and collect into a fresh per-worker session.
        tele.deactivate()
        session = tele.TelemetrySession(
            label=f"worker:{job.job_id}", process=f"worker-{os.getpid()}"
        )
        with tele.use(session):
            payload, error, attempts, wall = _attempt_job(
                job,
                retries=retries,
                backoff_s=backoff_s,
                backoff_seed=backoff_seed,
                journal=journal,
                timeline_dir=timeline_path,
            )
        return (
            index,
            payload,
            error,
            attempts,
            wall,
            session.tracer.as_dicts(),
            session.metrics.state(),
        )
    finally:
        if journal is not None:
            _WORKER_JOBS_DONE += 1
            jrnl.detach()
            journal.close()


class CampaignRunner:
    """Executes campaigns of independent jobs with caching and observability.

    Parameters
    ----------
    workers:
        Process-pool width; ``1`` (default) runs inline.  Pools that fail
        to start (restricted platforms) or die mid-campaign degrade to the
        serial path, which is result-identical by construction and only
        re-executes jobs whose results were not already collected.
    cache:
        A :class:`ResultCache`, or ``None`` to always execute.
    retries:
        Extra executions granted to a failing job (0 = one attempt only).
        Backed off exponentially from ``backoff_s`` with seeded jitter.
    keep_going:
        Failure policy once retries are exhausted: ``False`` (default)
        raises :class:`~repro.exceptions.CampaignExecutionError`;
        ``True`` records the failure and finishes the surviving jobs.
    backoff_s:
        Base backoff delay in seconds (0 disables sleeping — the right
        setting for simulated faults and tests).
    backoff_seed:
        Seed for the backoff jitter stream.
    journal:
        Flight-recorder target: a path (the runner creates, finalizes,
        and digests the journal) or an existing
        :class:`~repro.journal.JournalWriter` (the caller keeps ownership
        and finalization).  ``None`` (default) records nothing.
    timeline:
        Directory for per-job power-timeline artifacts
        (:mod:`repro.timeline`).  When set, every executed job arms the
        ambient timeline sink and its captured run timelines land as
        ``<dir>/<job_id>.timeline.json`` — the input of ``tgi dashboard``.
        ``None`` (default) captures nothing; cached jobs never re-capture.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        retries: int = 0,
        keep_going: bool = False,
        backoff_s: float = 0.0,
        backoff_seed: int = 0,
        journal: Optional[Union[str, Path, jrnl.JournalWriter]] = None,
        timeline: Optional[Union[str, Path]] = None,
    ):
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if retries < 0:
            raise ReproError(f"retries must be >= 0, got {retries}")
        if backoff_s < 0:
            raise ReproError(f"backoff_s must be >= 0, got {backoff_s}")
        self.workers = workers
        self.cache = cache
        self.retries = retries
        self.keep_going = keep_going
        self.backoff_s = backoff_s
        self.backoff_seed = backoff_seed
        self.journal = journal
        self.timeline = Path(timeline) if timeline is not None else None

    # ------------------------------------------------------------------
    def _journal_writer(
        self, label: str
    ) -> Tuple[Optional[jrnl.JournalWriter], bool]:
        """The run's journal writer plus whether this runner owns it."""
        if self.journal is None:
            return None, False
        if isinstance(self.journal, jrnl.JournalWriter):
            return self.journal, False
        return jrnl.JournalWriter(Path(self.journal), label=label), True

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[CampaignJob], *, label: str = "campaign") -> CampaignResult:
        """Execute the campaign and return outcomes plus manifest.

        Raises :class:`~repro.exceptions.CampaignExecutionError` when a
        job exhausts its retries under the fail-fast policy (the default);
        with ``keep_going`` the error surfaces in the outcome/manifest and
        the method still returns.  A fail-fast abort still finalizes a
        runner-owned journal (``run.stop`` with ``status="aborted"``) —
        the flight recorder's whole point is surviving the crash.
        """
        jobs = check_jobs(jobs)

        if self.timeline is not None:
            self.timeline.mkdir(parents=True, exist_ok=True)

        writer, owns_writer = self._journal_writer(label)
        attached_ambient = False
        if writer is not None:
            writer.emit(
                "run.start",
                label=label,
                jobs=len(jobs),
                workers=self.workers,
                retries_allowed=self.retries,
                keep_going=self.keep_going,
                cache_enabled=self.cache is not None,
            )
            # Ambient emission is what lets deeply nested code (the fault
            # injector) journal on the serial path; pool workers attach
            # their own per-process handle instead.
            if jrnl.ambient() is None:
                jrnl.attach(writer)
                attached_ambient = True

        t_start = time.perf_counter()
        invalidations_before = self.cache.stats.invalidations if self.cache is not None else 0
        try:
            with tele.span("campaign.run", label=label, jobs=len(jobs)):
                keys: List[str] = []
                for job in jobs:
                    with tele.span("job.serialize", job=job.job_id):
                        keys.append(cache_key(job))
                if writer is not None:
                    for index, (job, key) in enumerate(zip(jobs, keys)):
                        writer.emit(
                            "job.scheduled", job=job.job_id, key=key, index=index
                        )
                payloads: Dict[int, Dict] = {}
                statuses: Dict[int, str] = {}
                walls: Dict[int, float] = {}
                errors: Dict[int, Dict] = {}
                attempts: Dict[int, int] = {}

                pending: List[int] = []
                for index, key in enumerate(keys):
                    job_id = jobs[index].job_id
                    with tele.span(
                        "job.cache_probe", job=job_id, skipped=self.cache is None
                    ):
                        if self.cache is not None:
                            t0 = time.perf_counter()
                            cached = self.cache.get(key)
                            if cached is not None:
                                payloads[index] = cached
                                statuses[index] = "hit"
                                walls[index] = time.perf_counter() - t0
                                attempts[index] = 0
                                if writer is not None:
                                    writer.emit(
                                        "job.cache_hit",
                                        job=job_id,
                                        key=key,
                                        attempt=0,
                                    )
                                continue
                    pending.append(index)

                workers_used = self._execute(
                    jobs, pending, payloads, walls, errors, attempts, writer
                )

                failed = [i for i in pending if i in errors]
                if failed and not self.keep_going:
                    failures = [
                        {"job_id": jobs[i].job_id, "error": errors[i]} for i in failed
                    ]
                    first = failures[0]
                    raise CampaignExecutionError(
                        f"{len(failed)} of {len(jobs)} campaign job(s) failed "
                        f"(first: {first['job_id']} — {first['error']['type']}: "
                        f"{first['error']['message']}); rerun with keep_going=True "
                        "to collect the surviving jobs",
                        failures=failures,
                    )

                for index in pending:
                    if index in errors:
                        statuses[index] = "failed"
                        continue
                    statuses[index] = "uncached" if self.cache is None else "computed"
                    with tele.span(
                        "job.store", job=jobs[index].job_id, skipped=self.cache is None
                    ):
                        if self.cache is not None:
                            self.cache.put(keys[index], payloads[index])
                if tele.active():
                    for index in range(len(jobs)):
                        tele.count("tgi_campaign_jobs_total", status=statuses[index])
                    jobs_failed = len(failed)
                    retries_total = sum(
                        max(0, attempts.get(i, 1) - 1) for i in pending
                    )
                    if jobs_failed:
                        tele.count("tgi_campaign_jobs_failed_total", jobs_failed)
                    if retries_total:
                        tele.count("tgi_campaign_jobs_retried_total", retries_total)
        except CampaignExecutionError as exc:
            if writer is not None and owns_writer:
                writer.finalize(
                    status="aborted",
                    jobs_failed=len(exc.failures),
                    total_wall_s=time.perf_counter() - t_start,
                )
            raise
        finally:
            if attached_ambient:
                jrnl.detach()

        total_wall = time.perf_counter() - t_start
        outcomes = [
            JobOutcome(
                job=jobs[i],
                key=keys[i],
                payload=payloads.get(i),
                cache_status=statuses[i],
                wall_s=walls.get(i, 0.0),
                status="failed" if i in errors else "ok",
                error=errors.get(i),
                attempts=attempts.get(i, 1),
            )
            for i in range(len(jobs))
        ]
        invalidations = (
            self.cache.stats.invalidations - invalidations_before if self.cache is not None else 0
        )
        journal_info = None
        if writer is not None:
            jobs_failed_total = sum(1 for o in outcomes if not o.ok)
            journal_info = {
                "path": str(writer.path),
                "run_id": writer.run_id,
                "events": writer.events_written,
                "sha256": None,
            }
            if owns_writer:
                summary = writer.finalize(
                    status="ok" if not jobs_failed_total else "failed",
                    jobs_failed=jobs_failed_total,
                    total_wall_s=total_wall,
                )
                journal_info["events"] = summary["events"]
                journal_info["sha256"] = summary["sha256"]
        timeline_info = None
        if self.timeline is not None:
            artifacts = sorted(self.timeline.glob("*.timeline.json"))
            timeline_info = {
                "dir": str(self.timeline),
                "artifacts": len(artifacts),
                "version": tline.TIMELINE_SCHEMA_VERSION,
            }
        manifest = build_manifest(
            label=label,
            outcomes=outcomes,
            total_wall=total_wall,
            workers_requested=self.workers,
            workers_used=workers_used,
            cache=self.cache,
            retries_allowed=self.retries,
            keep_going=self.keep_going,
            invalidations=invalidations,
            journal_info=journal_info,
            timeline_info=timeline_info,
        )
        return CampaignResult(outcomes, manifest)

    # ------------------------------------------------------------------
    def _execute(
        self,
        jobs: Sequence[CampaignJob],
        pending: List[int],
        payloads: Dict[int, Dict],
        walls: Dict[int, float],
        errors: Dict[int, Dict],
        attempts: Dict[int, int],
        journal: Optional[jrnl.JournalWriter] = None,
    ) -> int:
        """Run the uncached jobs; returns the worker count actually used.

        Fills exactly one of ``payloads[i]``/``errors[i]`` (plus
        ``walls[i]`` and ``attempts[i]``) for every pending index it
        reaches; under fail-fast it stops dispatching after the first
        exhausted job.  If the pool dies mid-campaign, the serial fallback
        picks up only the indices whose results were not yet collected.
        Pool workers get the journal's *path* (writers hold fds and locks,
        which do not pickle) and append to it directly; the serial path
        reuses the parent's writer.
        """
        if not pending:
            return 1
        session = tele.current()
        journal_path = str(journal.path) if journal is not None else None
        journal_run_id = journal.run_id if journal is not None else None
        timeline_dir = str(self.timeline) if self.timeline is not None else None
        pool_failed_mid_stream = False
        if self.workers > 1 and len(pending) > 1:
            try:
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    with tele.span(
                        "campaign.pool",
                        workers=min(self.workers, len(pending)),
                        jobs=len(pending),
                    ) as pool_span:
                        for (
                            index,
                            payload,
                            error,
                            job_attempts,
                            wall,
                            span_dicts,
                            metric_state,
                        ) in pool.map(
                            _execute_keyed,
                            [
                                (
                                    i,
                                    jobs[i],
                                    session is not None,
                                    self.retries,
                                    self.backoff_s,
                                    self.backoff_seed,
                                    journal_path,
                                    journal_run_id,
                                    timeline_dir,
                                )
                                for i in pending
                            ],
                        ):
                            walls[index] = wall
                            attempts[index] = job_attempts
                            if error is not None:
                                errors[index] = error
                            else:
                                payloads[index] = payload
                            if session is not None and span_dicts:
                                session.tracer.absorb(
                                    span_dicts,
                                    parent_id=pool_span.span_id,
                                    offset_s=pool_span.t_start,
                                )
                            if session is not None and metric_state:
                                session.metrics.merge(metric_state)
                            if error is not None and not self.keep_going:
                                # Fail fast: stop feeding the pool; run()
                                # raises from the recorded error.
                                pool.shutdown(wait=False, cancel_futures=True)
                                return min(self.workers, len(pending))
                return min(self.workers, len(pending))
            except (OSError, PermissionError, ImportError, BrokenExecutor):
                pool_failed_mid_stream = True  # fall through to the serial path
        remaining = [
            i for i in pending if i not in payloads and i not in errors
        ]
        if pool_failed_mid_stream and len(remaining) < len(pending) and tele.active():
            tele.count(
                "tgi_campaign_pool_fallback_total", resumed_jobs=len(remaining)
            )
        for index in remaining:
            payload, error, job_attempts, wall = _attempt_job(
                jobs[index],
                retries=self.retries,
                backoff_s=self.backoff_s,
                backoff_seed=self.backoff_seed,
                journal=journal,
                timeline_dir=self.timeline,
            )
            walls[index] = wall
            attempts[index] = job_attempts
            if error is not None:
                errors[index] = error
                if not self.keep_going:
                    return 1
            else:
                payloads[index] = payload
        return 1

def build_manifest(
    *,
    label: str,
    outcomes: Sequence[JobOutcome],
    total_wall: float,
    workers_requested: int,
    workers_used: int,
    cache: Optional[ResultCache],
    retries_allowed: int,
    keep_going: bool,
    invalidations: int,
    journal_info: Optional[Dict] = None,
    timeline_info: Optional[Dict] = None,
    extra: Optional[Dict] = None,
) -> Dict:
    """Assemble (and fingerprint) the run manifest from job outcomes.

    The single manifest builder shared by :class:`CampaignRunner` and the
    sharded scheduler: both executors describe a run in exactly the same
    rows, so their fingerprints are directly comparable.  ``extra`` merges
    additional top-level blocks (e.g. the scheduler's ``sharding`` block);
    every extra key must be listed in
    :data:`repro.campaign.manifest.VOLATILE_CAMPAIGN_FIELDS`, keeping
    fingerprints invariant across executors.
    """
    from .. import __version__
    from .manifest import VOLATILE_CAMPAIGN_FIELDS

    session = tele.current()
    jobs_failed = sum(1 for o in outcomes if not o.ok)
    retries_total = sum(o.retries for o in outcomes)
    manifest = {
        "manifest_version": MANIFEST_VERSION,
        "label": label,
        "code_version": cache.code_version if cache is not None else __version__,
        "created_unix": time.time(),
        "total_wall_s": total_wall,
        "workers_requested": workers_requested,
        "workers_used": workers_used,
        "cache_enabled": cache is not None,
        "cache": cache.cache_stats if cache is not None else None,
        "cache_run": run_cache_stats(
            [o.cache_status for o in outcomes],
            executions=[o.attempts for o in outcomes],
            invalidations=invalidations,
        ),
        # Failure accounting; volatile because a warm cache changes how
        # many executions (and hence retries) actually happened.
        "failures": {
            "jobs_failed": jobs_failed,
            "jobs_retried": sum(1 for o in outcomes if o.retries),
            "retries_total": retries_total,
            "retries_allowed": retries_allowed,
            "keep_going": keep_going,
        },
        # Volatile flight-recorder block: where the journal landed,
        # how many events it holds, and its content digest.  Excluded
        # from the fingerprint — journaled and bare runs of the same
        # jobs are fingerprint-identical.
        "journal": journal_info,
        # Volatile power-timeline block: where per-job artifacts
        # landed and how many.  Excluded from the fingerprint — runs
        # with and without timeline capture are fingerprint-identical.
        "timeline": timeline_info,
        # Volatile observability summary; the full export is written by
        # the CLI beside the manifest.  Excluded from the fingerprint.
        "telemetry": None
        if session is None
        else {
            "session": session.label,
            "span_count": len(session.tracer.spans),
            "span_names": sorted({s.name for s in session.tracer.spans}),
            "metric_names": sorted(session.metrics.as_dict()),
        },
        "jobs": [
            {
                "job_id": o.job.job_id,
                "key": o.key,
                "status": o.status,
                "payload_sha256": cache_key(o.payload) if o.ok else None,
                "cluster_name": o.payload["cluster_name"] if o.ok else None,
                "core_counts": list(o.job.core_counts),
                "spec": job_to_dict(o.job),
                "cache_status": o.cache_status,
                "wall_s": o.wall_s,
                "attempts": o.attempts,
                "error": o.error,
            }
            for o in outcomes
        ],
    }
    if extra:
        rogue = sorted(set(extra) - set(VOLATILE_CAMPAIGN_FIELDS))
        if rogue:
            raise ReproError(
                f"extra manifest block(s) {rogue} are not fingerprint-volatile; "
                "add them to VOLATILE_CAMPAIGN_FIELDS or drop them"
            )
        manifest.update(extra)
    manifest["fingerprint"] = manifest_fingerprint(manifest)
    return manifest
