"""The campaign executor: fan jobs out, consult the cache, keep the books.

:class:`CampaignRunner` takes a list of :class:`~repro.campaign.jobs.CampaignJob`
and produces a :class:`CampaignResult`:

1. every job is keyed by the SHA-256 of its canonical serialization;
2. keyed jobs are probed against the (optional) on-disk
   :class:`~repro.campaign.cache.ResultCache` — hits skip execution;
3. the remaining jobs run on a ``concurrent.futures`` process pool
   (``workers > 1``) or inline (``workers == 1``, and automatically as a
   fallback when the platform cannot spawn a pool);
4. each outcome records wall time and cache status, and the whole run is
   summarized in a machine-readable manifest (see
   :mod:`repro.campaign.manifest`).

Ordering is part of the contract: outcomes and manifest rows follow job
submission order, never completion order, so parallel runs are manifest-
identical to serial runs modulo the volatile timing fields.

When a telemetry session is active (:mod:`repro.telemetry`) the runner
traces each job's lifecycle — ``job.serialize`` → ``job.cache_probe`` →
``job.execute`` → ``job.store`` — and counts jobs and cache behaviour into
the metrics registry.  Pool workers collect spans and metrics in their own
process and ship them back beside the payload; the parent absorbs worker
spans under its ``campaign.pool`` span and merges worker metric state.
Telemetry never touches payloads, cache keys, or manifest fingerprints:
runs are byte-identical with telemetry on or off.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .. import telemetry as tele
from ..benchmarks.runner import SweepResult
from ..benchmarks.suite import SuiteResult
from ..exceptions import ReproError
from .cache import ResultCache, cache_key
from .jobs import CampaignJob, execute_job, job_to_dict, payload_sweep
from .manifest import MANIFEST_VERSION, manifest_fingerprint, write_manifest

__all__ = ["JobOutcome", "CampaignResult", "CampaignRunner", "run_cache_stats"]

#: Cache statuses a job outcome can carry.
CACHE_STATUSES = ("hit", "computed", "uncached")


@dataclass(frozen=True)
class JobOutcome:
    """One job's result plus its execution record."""

    job: CampaignJob
    key: str
    payload: Dict
    cache_status: str  # "hit" | "computed" | "uncached"
    wall_s: float

    @property
    def sweep(self) -> SweepResult:
        """The job's results as a live sweep object."""
        return payload_sweep(self.payload)


def run_cache_stats(
    statuses: Sequence[str], *, invalidations: int = 0
) -> Dict[str, float]:
    """Run-level cache accounting from per-job cache statuses.

    The single source for ``CampaignResult.cache_stats``, the manifest's
    ``cache_run`` block, and the CLI summary — hits are jobs served from
    cache, misses are jobs that had to execute (whether or not a cache was
    configured), invalidations are stale entries dropped during the run.
    """
    jobs = len(statuses)
    hits = sum(1 for s in statuses if s == "hit")
    return {
        "jobs": jobs,
        "hits": hits,
        "misses": jobs - hits,
        "invalidations": invalidations,
        "hit_rate": hits / jobs if jobs else 0.0,
    }


class CampaignResult:
    """All outcomes of one campaign run, in submission order."""

    def __init__(self, outcomes: Sequence[JobOutcome], manifest: Dict):
        self.outcomes: List[JobOutcome] = list(outcomes)
        self.manifest = manifest
        self._by_id = {o.job.job_id: o for o in self.outcomes}

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    def __getitem__(self, job_id: str) -> JobOutcome:
        try:
            return self._by_id[job_id]
        except KeyError:
            raise KeyError(
                f"no job {job_id!r} in campaign; ran {sorted(self._by_id)}"
            ) from None

    def sweep(self, job_id: str) -> SweepResult:
        """One job's results as a sweep."""
        return self[job_id].sweep

    def suite(self, job_id: str) -> SuiteResult:
        """A single-point job's suite result."""
        sweep = self.sweep(job_id)
        if len(sweep) != 1:
            raise ReproError(
                f"job {job_id!r} has {len(sweep)} scale points; use sweep()"
            )
        return sweep.suites[0]

    @property
    def cache_stats(self) -> Dict[str, float]:
        """Run-level cache accounting (jobs/hits/misses/invalidations/hit_rate)."""
        return dict(self.manifest["cache_run"])

    @property
    def cache_hits(self) -> int:
        """Jobs satisfied from the cache."""
        return int(self.cache_stats["hits"])

    @property
    def hit_rate(self) -> float:
        """Fraction of jobs satisfied from the cache."""
        return float(self.cache_stats["hit_rate"])

    def write_manifest(self, path) -> None:
        """Persist the manifest as JSON."""
        write_manifest(self.manifest, path)


def _execute_keyed(args):
    """Pool-side shim: (index, job, telemetry?) -> (index, payload, spans, metrics).

    With telemetry requested, the worker collects into its own session and
    ships the finished spans (dict form) and the metric state back with the
    payload; both are ``None`` otherwise.
    """
    index, job, with_telemetry = args
    if not with_telemetry:
        return index, execute_job(job), None, None
    # Under the fork start method the worker inherits a *copy* of the
    # parent's ambient session; nothing collected into it would ever ship
    # back, so drop it and collect into a fresh per-worker session.
    tele.deactivate()
    session = tele.TelemetrySession(
        label=f"worker:{job.job_id}", process=f"worker-{os.getpid()}"
    )
    with tele.use(session):
        with tele.span("job.execute", job=job.job_id):
            payload = execute_job(job)
    return index, payload, session.tracer.as_dicts(), session.metrics.state()


class CampaignRunner:
    """Executes campaigns of independent jobs with caching and observability.

    Parameters
    ----------
    workers:
        Process-pool width; ``1`` (default) runs inline.  Pools that fail
        to start (restricted platforms) degrade to the serial path, which
        is result-identical by construction.
    cache:
        A :class:`ResultCache`, or ``None`` to always execute.
    """

    def __init__(self, *, workers: int = 1, cache: Optional[ResultCache] = None):
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache = cache

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[CampaignJob], *, label: str = "campaign") -> CampaignResult:
        """Execute the campaign and return outcomes plus manifest."""
        jobs = list(jobs)
        if not jobs:
            raise ReproError("campaign needs at least one job")
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ReproError(f"duplicate job ids in campaign: {dupes}")

        t_start = time.perf_counter()
        invalidations_before = self.cache.stats.invalidations if self.cache else 0
        with tele.span("campaign.run", label=label, jobs=len(jobs)):
            keys: List[str] = []
            for job in jobs:
                with tele.span("job.serialize", job=job.job_id):
                    keys.append(cache_key(job))
            payloads: Dict[int, Dict] = {}
            statuses: Dict[int, str] = {}
            walls: Dict[int, float] = {}

            pending: List[int] = []
            for index, key in enumerate(keys):
                job_id = jobs[index].job_id
                with tele.span(
                    "job.cache_probe", job=job_id, skipped=self.cache is None
                ):
                    if self.cache is not None:
                        t0 = time.perf_counter()
                        cached = self.cache.get(key)
                        if cached is not None:
                            payloads[index] = cached
                            statuses[index] = "hit"
                            walls[index] = time.perf_counter() - t0
                            continue
                pending.append(index)

            workers_used = self._execute(jobs, pending, payloads, walls)
            for index in pending:
                statuses[index] = "uncached" if self.cache is None else "computed"
                with tele.span(
                    "job.store", job=jobs[index].job_id, skipped=self.cache is None
                ):
                    if self.cache is not None:
                        self.cache.put(keys[index], payloads[index])
            if tele.active():
                for index in range(len(jobs)):
                    tele.count("tgi_campaign_jobs_total", status=statuses[index])

        total_wall = time.perf_counter() - t_start
        outcomes = [
            JobOutcome(
                job=jobs[i],
                key=keys[i],
                payload=payloads[i],
                cache_status=statuses[i],
                wall_s=walls[i],
            )
            for i in range(len(jobs))
        ]
        invalidations = (
            self.cache.stats.invalidations - invalidations_before if self.cache else 0
        )
        manifest = self._build_manifest(
            label, outcomes, total_wall, workers_used, invalidations
        )
        return CampaignResult(outcomes, manifest)

    # ------------------------------------------------------------------
    def _execute(
        self,
        jobs: Sequence[CampaignJob],
        pending: List[int],
        payloads: Dict[int, Dict],
        walls: Dict[int, float],
    ) -> int:
        """Run the uncached jobs; returns the worker count actually used."""
        if not pending:
            return 1
        session = tele.current()
        if self.workers > 1 and len(pending) > 1:
            try:
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    with tele.span(
                        "campaign.pool",
                        workers=min(self.workers, len(pending)),
                        jobs=len(pending),
                    ) as pool_span:
                        t0 = time.perf_counter()
                        for index, payload, span_dicts, metric_state in pool.map(
                            _execute_keyed,
                            [(i, jobs[i], session is not None) for i in pending],
                        ):
                            payloads[index] = payload
                            # Per-job wall time is unobservable from the parent
                            # under a pool; record elapsed-so-far, which is still
                            # monotone and sums sensibly.  Volatile by contract.
                            walls[index] = time.perf_counter() - t0
                            t0 = time.perf_counter()
                            if session is not None and span_dicts:
                                session.tracer.absorb(
                                    span_dicts,
                                    parent_id=pool_span.span_id,
                                    offset_s=pool_span.t_start,
                                )
                            if session is not None and metric_state:
                                session.metrics.merge(metric_state)
                return min(self.workers, len(pending))
            except (OSError, PermissionError, ImportError):
                pass  # fall through to the serial path
        for index in pending:
            t0 = time.perf_counter()
            with tele.span("job.execute", job=jobs[index].job_id):
                payloads[index] = execute_job(jobs[index])
            walls[index] = time.perf_counter() - t0
        return 1

    # ------------------------------------------------------------------
    def _build_manifest(
        self,
        label: str,
        outcomes: Sequence[JobOutcome],
        total_wall: float,
        workers_used: int,
        invalidations: int,
    ) -> Dict:
        from .. import __version__

        session = tele.current()
        manifest = {
            "manifest_version": MANIFEST_VERSION,
            "label": label,
            "code_version": self.cache.code_version if self.cache else __version__,
            "created_unix": time.time(),
            "total_wall_s": total_wall,
            "workers_requested": self.workers,
            "workers_used": workers_used,
            "cache_enabled": self.cache is not None,
            "cache": self.cache.cache_stats if self.cache is not None else None,
            "cache_run": run_cache_stats(
                [o.cache_status for o in outcomes], invalidations=invalidations
            ),
            # Volatile observability summary; the full export is written by
            # the CLI beside the manifest.  Excluded from the fingerprint.
            "telemetry": None
            if session is None
            else {
                "session": session.label,
                "span_count": len(session.tracer.spans),
                "span_names": sorted({s.name for s in session.tracer.spans}),
                "metric_names": sorted(session.metrics.as_dict()),
            },
            "jobs": [
                {
                    "job_id": o.job.job_id,
                    "key": o.key,
                    "payload_sha256": cache_key(o.payload),
                    "cluster_name": o.payload["cluster_name"],
                    "core_counts": list(o.job.core_counts),
                    "spec": job_to_dict(o.job),
                    "cache_status": o.cache_status,
                    "wall_s": o.wall_s,
                }
                for o in outcomes
            ],
        }
        manifest["fingerprint"] = manifest_fingerprint(manifest)
        return manifest
