"""The campaign executor: fan jobs out, consult the cache, keep the books.

:class:`CampaignRunner` takes a list of :class:`~repro.campaign.jobs.CampaignJob`
and produces a :class:`CampaignResult`:

1. every job is keyed by the SHA-256 of its canonical serialization;
2. keyed jobs are probed against the (optional) on-disk
   :class:`~repro.campaign.cache.ResultCache` — hits skip execution;
3. the remaining jobs run on a ``concurrent.futures`` process pool
   (``workers > 1``) or inline (``workers == 1``, and automatically as a
   fallback when the platform cannot spawn a pool);
4. each outcome records wall time and cache status, and the whole run is
   summarized in a machine-readable manifest (see
   :mod:`repro.campaign.manifest`).

Ordering is part of the contract: outcomes and manifest rows follow job
submission order, never completion order, so parallel runs are manifest-
identical to serial runs modulo the volatile timing fields.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..benchmarks.runner import SweepResult
from ..benchmarks.suite import SuiteResult
from ..exceptions import ReproError
from .cache import ResultCache, cache_key
from .jobs import CampaignJob, execute_job, job_to_dict, payload_sweep
from .manifest import MANIFEST_VERSION, manifest_fingerprint, write_manifest

__all__ = ["JobOutcome", "CampaignResult", "CampaignRunner"]

#: Cache statuses a job outcome can carry.
CACHE_STATUSES = ("hit", "computed", "uncached")


@dataclass(frozen=True)
class JobOutcome:
    """One job's result plus its execution record."""

    job: CampaignJob
    key: str
    payload: Dict
    cache_status: str  # "hit" | "computed" | "uncached"
    wall_s: float

    @property
    def sweep(self) -> SweepResult:
        """The job's results as a live sweep object."""
        return payload_sweep(self.payload)


class CampaignResult:
    """All outcomes of one campaign run, in submission order."""

    def __init__(self, outcomes: Sequence[JobOutcome], manifest: Dict):
        self.outcomes: List[JobOutcome] = list(outcomes)
        self.manifest = manifest
        self._by_id = {o.job.job_id: o for o in self.outcomes}

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    def __getitem__(self, job_id: str) -> JobOutcome:
        try:
            return self._by_id[job_id]
        except KeyError:
            raise KeyError(
                f"no job {job_id!r} in campaign; ran {sorted(self._by_id)}"
            ) from None

    def sweep(self, job_id: str) -> SweepResult:
        """One job's results as a sweep."""
        return self[job_id].sweep

    def suite(self, job_id: str) -> SuiteResult:
        """A single-point job's suite result."""
        sweep = self.sweep(job_id)
        if len(sweep) != 1:
            raise ReproError(
                f"job {job_id!r} has {len(sweep)} scale points; use sweep()"
            )
        return sweep.suites[0]

    @property
    def cache_hits(self) -> int:
        """Jobs satisfied from the cache."""
        return sum(1 for o in self.outcomes if o.cache_status == "hit")

    @property
    def hit_rate(self) -> float:
        """Fraction of jobs satisfied from the cache."""
        if not self.outcomes:
            return 0.0
        return self.cache_hits / len(self.outcomes)

    def write_manifest(self, path) -> None:
        """Persist the manifest as JSON."""
        write_manifest(self.manifest, path)


def _execute_keyed(args):
    """Pool-side shim: (index, job) -> (index, payload)."""
    index, job = args
    return index, execute_job(job)


class CampaignRunner:
    """Executes campaigns of independent jobs with caching and observability.

    Parameters
    ----------
    workers:
        Process-pool width; ``1`` (default) runs inline.  Pools that fail
        to start (restricted platforms) degrade to the serial path, which
        is result-identical by construction.
    cache:
        A :class:`ResultCache`, or ``None`` to always execute.
    """

    def __init__(self, *, workers: int = 1, cache: Optional[ResultCache] = None):
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache = cache

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[CampaignJob], *, label: str = "campaign") -> CampaignResult:
        """Execute the campaign and return outcomes plus manifest."""
        jobs = list(jobs)
        if not jobs:
            raise ReproError("campaign needs at least one job")
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ReproError(f"duplicate job ids in campaign: {dupes}")

        t_start = time.perf_counter()
        keys = [cache_key(job) for job in jobs]
        payloads: Dict[int, Dict] = {}
        statuses: Dict[int, str] = {}
        walls: Dict[int, float] = {}

        pending: List[int] = []
        for index, key in enumerate(keys):
            if self.cache is not None:
                t0 = time.perf_counter()
                cached = self.cache.get(key)
                if cached is not None:
                    payloads[index] = cached
                    statuses[index] = "hit"
                    walls[index] = time.perf_counter() - t0
                    continue
            pending.append(index)

        workers_used = self._execute(jobs, pending, payloads, walls)
        for index in pending:
            statuses[index] = "uncached" if self.cache is None else "computed"
            if self.cache is not None:
                self.cache.put(keys[index], payloads[index])

        total_wall = time.perf_counter() - t_start
        outcomes = [
            JobOutcome(
                job=jobs[i],
                key=keys[i],
                payload=payloads[i],
                cache_status=statuses[i],
                wall_s=walls[i],
            )
            for i in range(len(jobs))
        ]
        manifest = self._build_manifest(label, outcomes, total_wall, workers_used)
        return CampaignResult(outcomes, manifest)

    # ------------------------------------------------------------------
    def _execute(
        self,
        jobs: Sequence[CampaignJob],
        pending: List[int],
        payloads: Dict[int, Dict],
        walls: Dict[int, float],
    ) -> int:
        """Run the uncached jobs; returns the worker count actually used."""
        if not pending:
            return 1
        if self.workers > 1 and len(pending) > 1:
            try:
                with ProcessPoolExecutor(max_workers=self.workers) as pool:
                    t0 = time.perf_counter()
                    for index, payload in pool.map(
                        _execute_keyed, [(i, jobs[i]) for i in pending]
                    ):
                        payloads[index] = payload
                        # Per-job wall time is unobservable from the parent
                        # under a pool; record elapsed-so-far, which is still
                        # monotone and sums sensibly.  Volatile by contract.
                        walls[index] = time.perf_counter() - t0
                        t0 = time.perf_counter()
                return min(self.workers, len(pending))
            except (OSError, PermissionError, ImportError):
                pass  # fall through to the serial path
        for index in pending:
            t0 = time.perf_counter()
            payloads[index] = execute_job(jobs[index])
            walls[index] = time.perf_counter() - t0
        return 1

    # ------------------------------------------------------------------
    def _build_manifest(
        self,
        label: str,
        outcomes: Sequence[JobOutcome],
        total_wall: float,
        workers_used: int,
    ) -> Dict:
        from .. import __version__

        cache_stats = self.cache.stats.as_dict() if self.cache is not None else None
        hits = sum(1 for o in outcomes if o.cache_status == "hit")
        manifest = {
            "manifest_version": MANIFEST_VERSION,
            "label": label,
            "code_version": self.cache.code_version if self.cache else __version__,
            "created_unix": time.time(),
            "total_wall_s": total_wall,
            "workers_requested": self.workers,
            "workers_used": workers_used,
            "cache_enabled": self.cache is not None,
            "cache": cache_stats,
            "cache_run": {
                "jobs": len(outcomes),
                "hits": hits,
                "executed": len(outcomes) - hits,
                "hit_rate": hits / len(outcomes),
            },
            "jobs": [
                {
                    "job_id": o.job.job_id,
                    "key": o.key,
                    "payload_sha256": cache_key(o.payload),
                    "cluster_name": o.payload["cluster_name"],
                    "core_counts": list(o.job.core_counts),
                    "spec": job_to_dict(o.job),
                    "cache_status": o.cache_status,
                    "wall_s": o.wall_s,
                }
                for o in outcomes
            ],
        }
        manifest["fingerprint"] = manifest_fingerprint(manifest)
        return manifest
