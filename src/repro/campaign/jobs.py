"""Campaign jobs: pure, picklable units of benchmark execution.

A :class:`CampaignJob` fully describes one measurement — which machine
(by *reference*, not by live spec, so jobs stay tiny, hashable, and stable
across processes), which suite configuration, which scale points, and the
meter seed.  :func:`execute_job` turns a job into a JSON-compatible payload
with no ambient state: a fresh seeded executor per job means the result is
bit-identical whether the job runs inline, in a worker process, or was
archived by a previous campaign.

Job granularity is deliberate: the simulated meter's RNG advances across
runs *within* one executor, so the unit of parallelism is a whole seeded
sweep on one machine — never a single point of someone else's sweep.
Splitting finer would change the draws and break serial/parallel
equivalence.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster import presets
from ..cluster.cluster import ClusterSpec
from ..cluster.generator import fleet_seeds, generate_cluster
from ..benchmarks.runner import SweepResult, run_sweep
from ..exceptions import ReproError
from ..experiments.config import (
    ExperimentConfig,
    PAPER_CONFIG,
    build_suite,
    config_from_dict,
    config_to_dict,
)
from ..faults import FaultInjector, FaultPlan, plan_from_dict, plan_to_dict
from ..serialization import sweep_result_from_dict, sweep_result_to_dict
from ..sim.executor import ClusterExecutor

__all__ = [
    "ClusterRef",
    "CampaignJob",
    "execute_job",
    "payload_sweep",
    "paper_jobs",
    "fleet_jobs",
    "job_to_dict",
    "job_from_dict",
    "PAYLOAD_VERSION",
]

#: Schema version of job payloads (part of the cache contract).
PAYLOAD_VERSION = 1

#: Preset factories a ClusterRef may name.
_PRESETS = ("fire", "system_g", "gpu_cluster", "modern_cluster")


@dataclass(frozen=True)
class ClusterRef:
    """A serializable pointer to a cluster specification.

    ``kind="preset"`` resolves through :mod:`repro.cluster.presets` (with an
    optional ``num_nodes`` override, 0 meaning the preset default);
    ``kind="generated"`` resolves through the seeded era generator.  Either
    way, resolution is deterministic, so the reference — not the resolved
    spec — is what gets hashed and pickled.
    """

    kind: str = "preset"
    name: str = "fire"
    num_nodes: int = 0
    era: str = "2011"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("preset", "generated"):
            raise ReproError(f"cluster ref kind must be preset/generated, got {self.kind!r}")
        if self.kind == "preset" and self.name not in _PRESETS:
            raise ReproError(f"unknown preset {self.name!r}; available: {_PRESETS}")
        if self.num_nodes < 0:
            raise ReproError(f"num_nodes must be >= 0, got {self.num_nodes}")

    def resolve(self) -> ClusterSpec:
        """Materialize the spec."""
        if self.kind == "preset":
            factory = getattr(presets, self.name)
            if self.num_nodes:
                return factory(num_nodes=self.num_nodes)
            return factory()
        return generate_cluster(self.seed, era=self.era, name=self.name or "")


@dataclass(frozen=True)
class CampaignJob:
    """One unit of campaign work: a seeded suite sweep on one machine.

    ``core_counts`` of ``()`` means "the machine's full core count"
    (resolved at execution time).  ``reference_suite`` selects the
    capability-sized HPL used for reference-system runs.  ``faults``
    optionally attaches a deterministic :class:`~repro.faults.FaultPlan`;
    a faulted job is still pure in the caching sense — the plan is part of
    the job's identity, so its cache key differs from the clean job's.
    """

    job_id: str
    cluster: ClusterRef = field(default_factory=ClusterRef)
    core_counts: Tuple[int, ...] = ()
    seed: int = 0
    config: ExperimentConfig = PAPER_CONFIG
    reference_suite: bool = False
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ReproError("job_id must be non-empty")
        if any(c < 0 for c in self.core_counts):
            raise ReproError(f"core counts must be >= 0, got {self.core_counts}")


def execute_job(job: CampaignJob, *, attempt: int = 0) -> Dict:
    """Run one job and return its JSON-compatible payload.

    Pure in the caching sense: output depends only on the job (and the code
    version).  Safe to call from a worker process — everything it needs
    arrives pickled inside ``job``.

    ``attempt`` selects the retry attempt for fault injection: a plan with
    ``transient_failures=N`` makes attempts ``0..N-1`` raise and attempt
    ``N`` succeed with the *same* payload a clean job produces (each
    attempt gets a freshly seeded executor, so success is
    attempt-invariant and the cache stays sound).
    """
    injector: Optional[FaultInjector] = None
    if job.faults is not None and job.faults.injects_anything:
        injector = FaultInjector(job.faults, scope=job.job_id, attempt=attempt)
        injector.check_transient()
    cluster = job.cluster.resolve()
    executor = ClusterExecutor(cluster, rng=job.seed, faults=injector)
    suite = build_suite(job.config, reference=job.reference_suite)
    core_counts = [c or cluster.total_cores for c in (job.core_counts or (0,))]
    on_error = (
        "skip" if injector is not None and job.faults.containment == "benchmark" else "raise"
    )
    sweep = run_sweep(suite, executor, core_counts, on_error=on_error)
    payload = {
        "payload_version": PAYLOAD_VERSION,
        "job_id": job.job_id,
        "cluster_name": cluster.name,
        "sweep": sweep_result_to_dict(sweep),
    }
    # Normalize to JSON-native containers (tuples -> lists) so a payload
    # compares equal whether it was just computed or read back from cache.
    return json.loads(json.dumps(payload))


def payload_sweep(payload: Dict) -> SweepResult:
    """Rebuild the sweep result a payload carries."""
    if payload.get("payload_version") != PAYLOAD_VERSION:
        raise ReproError(
            f"payload version {payload.get('payload_version')!r} not supported "
            f"(this library reads version {PAYLOAD_VERSION})"
        )
    return sweep_result_from_dict(payload["sweep"])


def paper_jobs(config: ExperimentConfig = PAPER_CONFIG) -> List[CampaignJob]:
    """The calibrated paper campaign as two independent jobs.

    Job 0 is the SystemG reference run (Table I), job 1 the Fire scaling
    sweep (Figures 2-6) — exactly the work :class:`~repro.experiments.runner.SharedContext`
    computes, so a campaign-backed context reproduces the serial numbers
    bit-for-bit.
    """
    return [
        CampaignJob(
            job_id="reference",
            cluster=ClusterRef(kind="preset", name="system_g"),
            core_counts=(),
            seed=config.reference_seed,
            config=config,
            reference_suite=True,
        ),
        CampaignJob(
            job_id="fire-sweep",
            cluster=ClusterRef(kind="preset", name="fire"),
            core_counts=tuple(config.core_counts),
            seed=config.fire_seed,
            config=config,
        ),
    ]


def fleet_jobs(
    count: int,
    *,
    era: str = "2011",
    fleet_seed: int = 20110615,
    config: ExperimentConfig = PAPER_CONFIG,
    executor_seeds: Sequence[int] = (),
) -> List[CampaignJob]:
    """One full-machine job per generated fleet member.

    ``executor_seeds`` optionally pins each machine's meter seed (defaults
    to ``100 + i``, the convention of the Green500-style example).
    """
    seeds = list(executor_seeds) or [100 + i for i in range(count)]
    if len(seeds) != count:
        raise ReproError(f"need {count} executor seeds, got {len(seeds)}")
    jobs = []
    for i, sub_seed in enumerate(fleet_seeds(count, fleet_seed)):
        ref = ClusterRef(
            kind="generated", name=f"{era}-sys-{i:02d}", era=era, seed=sub_seed
        )
        jobs.append(
            CampaignJob(
                job_id=f"{era}-sys-{i:02d}",
                cluster=ref,
                core_counts=(),
                seed=seeds[i],
                config=config,
            )
        )
    return jobs


# Round-trip helpers for manifests/tooling ------------------------------

def job_to_dict(job: CampaignJob) -> Dict:
    """Serialize a job (the form embedded in manifests)."""
    return {
        "job_id": job.job_id,
        "cluster": {
            "kind": job.cluster.kind,
            "name": job.cluster.name,
            "num_nodes": job.cluster.num_nodes,
            "era": job.cluster.era,
            "seed": job.cluster.seed,
        },
        "core_counts": list(job.core_counts),
        "seed": job.seed,
        "config": config_to_dict(job.config),
        "reference_suite": job.reference_suite,
        # Emitted only when set, so manifests of clean jobs keep their
        # pre-fault-injection byte layout (and fingerprints).
        **({"faults": plan_to_dict(job.faults)} if job.faults is not None else {}),
    }


def job_from_dict(data: Dict) -> CampaignJob:
    """Rebuild a job serialized by :func:`job_to_dict`."""
    faults = data.get("faults")
    return CampaignJob(
        job_id=data["job_id"],
        cluster=ClusterRef(**data["cluster"]),
        core_counts=tuple(data["core_counts"]),
        seed=data["seed"],
        config=config_from_dict(data["config"]),
        reference_suite=data["reference_suite"],
        faults=plan_from_dict(faults) if faults is not None else None,
    )
