"""Terminal visualization: ASCII line charts for figure series.

The experiment drivers print their series as tables; for a quick visual
read of the *shapes* (the thing the reproduction is judged on) this module
renders multi-series ASCII charts with no plotting dependency:

>>> from repro.viz import ascii_chart
>>> print(ascii_chart({"EE": [1, 4, 9, 16]}, x=[1, 2, 3, 4]))   # doctest: +SKIP

Used by ``tgi run <fig> --plot`` and the examples.

If matplotlib happens to be installed, :func:`ensure_headless_backend`
(invoked at import) forces the non-interactive ``Agg`` backend when no
display is available, so batch/CI environments never die trying to open
a GUI toolkit.  Nothing here imports matplotlib — it is purely optional.
"""

from __future__ import annotations

import importlib.util
import os
from typing import Dict, List, Optional, Sequence

from .exceptions import ReproError

__all__ = ["ascii_chart", "ascii_sparkline", "ensure_headless_backend"]


def _matplotlib_available() -> bool:
    """Whether matplotlib is importable (without importing it)."""
    return importlib.util.find_spec("matplotlib") is not None


def ensure_headless_backend(environ=os.environ) -> bool:
    """Pin matplotlib to a non-interactive backend on display-less hosts.

    When no ``DISPLAY``/``WAYLAND_DISPLAY`` is set and matplotlib is
    installed, sets ``MPLBACKEND=Agg`` (unless the user already chose a
    backend) so any later ``import matplotlib`` cannot attempt a GUI
    toolkit.  Returns whether the variable was set by this call.  A no-op
    on machines with a display or without matplotlib.
    """
    if environ.get("DISPLAY") or environ.get("WAYLAND_DISPLAY"):
        return False
    if "MPLBACKEND" in environ:
        return False
    if not _matplotlib_available():
        return False
    environ["MPLBACKEND"] = "Agg"
    return True


ensure_headless_backend()

_MARKERS = "*o+x#@"
_SPARK_LEVELS = " .:-=+*#%@"


def ascii_chart(
    series: Dict[str, Sequence[float]],
    *,
    x: Optional[Sequence[float]] = None,
    width: int = 64,
    height: int = 16,
    title: str = "",
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render one or more series as an ASCII line chart.

    All series must share a length; ``x`` defaults to the sample index.
    Each series gets its own marker; a legend line maps markers to names.
    """
    if not series:
        raise ReproError("need at least one series")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ReproError(f"series lengths differ: {sorted(lengths)}")
    n = lengths.pop()
    if n < 2:
        raise ReproError("series need at least 2 points")
    if len(series) > len(_MARKERS):
        raise ReproError(f"at most {len(_MARKERS)} series supported")
    if x is None:
        x = list(range(n))
    if len(x) != n:
        raise ReproError(f"x has {len(x)} values, series have {n}")
    if width < 8 or height < 4:
        raise ReproError("chart must be at least 8x4")

    all_values = [float(v) for values in series.values() for v in values]
    y_min, y_max = min(all_values), max(all_values)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(min(x)), float(max(x))
    if x_max == x_min:
        x_max = x_min + 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    def to_col(xv: float) -> int:
        return round((xv - x_min) / (x_max - x_min) * (width - 1))

    def to_row(yv: float) -> int:
        return (height - 1) - round((yv - y_min) / (y_max - y_min) * (height - 1))

    for marker, (name, values) in zip(_MARKERS, series.items()):
        # connect consecutive points with interpolated dots, then overlay
        # the data points with the series marker
        cols = [to_col(float(xv)) for xv in x]
        rows = [to_row(float(yv)) for yv in values]
        for (c0, r0), (c1, r1) in zip(zip(cols, rows), zip(cols[1:], rows[1:])):
            steps = max(abs(c1 - c0), abs(r1 - r0), 1)
            for s in range(steps + 1):
                cc = round(c0 + (c1 - c0) * s / steps)
                rr = round(r0 + (r1 - r0) * s / steps)
                if grid[rr][cc] == " ":
                    grid[rr][cc] = "."
        for cc, rr in zip(cols, rows):
            grid[rr][cc] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(len(f"{y_max:.3g}"), len(f"{y_min:.3g}"))
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_max:.3g}".rjust(label_width)
        elif i == height - 1:
            label = f"{y_min:.3g}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    x_line = (
        " " * label_width
        + "  "
        + f"{x_min:.3g}".ljust(width - len(f"{x_max:.3g}"))
        + f"{x_max:.3g}"
    )
    lines.append(x_line)
    if x_label or y_label:
        lines.append(" " * label_width + f"  x: {x_label}   y: {y_label}".rstrip())
    legend = "   ".join(
        f"{marker} {name}" for marker, name in zip(_MARKERS, series.keys())
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)


def ascii_sparkline(values: Sequence[float], *, width: Optional[int] = None) -> str:
    """A one-line sparkline (resampled to ``width`` if given)."""
    vals = [float(v) for v in values]
    if not vals:
        raise ReproError("need at least one value")
    if width is not None and width >= 1 and len(vals) != width:
        # nearest-neighbour resample
        vals = [
            vals[min(len(vals) - 1, round(i * (len(vals) - 1) / max(1, width - 1)))]
            for i in range(width)
        ]
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _SPARK_LEVELS[len(_SPARK_LEVELS) // 2] * len(vals)
    out = []
    for v in vals:
        idx = round((v - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)
