"""Scaling sweeps: run the suite across core counts.

The paper's Figures 2-6 are all functions of scale on the Fire cluster
(MPI processes for HPL/STREAM, nodes for IOzone, cores for the TGI plots).
:class:`ScalingSweep` runs a :class:`~repro.benchmarks.suite.BenchmarkSuite`
at each point and collects a :class:`SweepResult` that the experiment
drivers and the metric layer slice by benchmark or by point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .. import telemetry as tele
from ..exceptions import BenchmarkError
from ..sim.executor import ClusterExecutor
from .suite import BenchmarkSuite, SuiteResult

__all__ = ["ScalePoint", "SweepResult", "ScalingSweep", "run_sweep"]


@dataclass(frozen=True)
class ScalePoint:
    """One x-axis point of a sweep."""

    cores: int

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise BenchmarkError(f"cores must be >= 1, got {self.cores}")


@dataclass(frozen=True)
class SweepResult:
    """Suite results at every scale point, in ascending core order."""

    points: Tuple[ScalePoint, ...]
    suites: Tuple[SuiteResult, ...]

    def __post_init__(self) -> None:
        if len(self.points) != len(self.suites):
            raise BenchmarkError("points and suites must align")
        cores = [p.cores for p in self.points]
        if cores != sorted(cores):
            raise BenchmarkError("scale points must be in ascending core order")

    @property
    def cores(self) -> List[int]:
        """The x-axis."""
        return [p.cores for p in self.points]

    def series(self, benchmark: str, attribute: str) -> np.ndarray:
        """A per-point series of one benchmark's attribute.

        ``attribute`` is any :class:`~repro.benchmarks.base.BenchmarkResult`
        property name (``"performance"``, ``"power_w"``, ``"time_s"``,
        ``"energy_j"``, ``"energy_efficiency"``).
        """
        values = []
        for suite in self.suites:
            result = suite[benchmark]
            values.append(getattr(result, attribute))
        return np.array(values, dtype=float)

    def efficiency_series(self, benchmark: str) -> np.ndarray:
        """EE_i at every scale point."""
        return self.series(benchmark, "energy_efficiency")

    def __len__(self) -> int:
        return len(self.points)


def run_sweep(
    suite: BenchmarkSuite,
    executor: ClusterExecutor,
    core_counts: Sequence[int],
    *,
    on_error: str = "raise",
) -> SweepResult:
    """Run ``suite`` at each core count on one executor, in order.

    This is the pure execution primitive behind :class:`ScalingSweep` and
    the campaign layer's jobs: given the same suite, a freshly-seeded
    executor, and the same core counts, it produces bit-identical results
    regardless of which process runs it.  ``on_error`` is forwarded to
    :meth:`BenchmarkSuite.run` — ``"skip"`` yields partial suite points
    when individual benchmarks fail (e.g. under injected node crashes).
    """
    if not core_counts:
        raise BenchmarkError("need at least one core count")
    if list(core_counts) != sorted(core_counts):
        raise BenchmarkError("core counts must be ascending")
    if len(set(core_counts)) != len(core_counts):
        raise BenchmarkError("core counts must be distinct")
    points = []
    suites = []
    for cores in core_counts:
        points.append(ScalePoint(cores=cores))
        with tele.span("sweep.point", cores=cores):
            suites.append(suite.run(executor, cores, on_error=on_error))
    return SweepResult(points=tuple(points), suites=tuple(suites))


class ScalingSweep:
    """Run a suite at each of a list of core counts."""

    def __init__(self, suite: BenchmarkSuite, core_counts: Sequence[int]):
        if not core_counts:
            raise BenchmarkError("need at least one core count")
        if list(core_counts) != sorted(core_counts):
            raise BenchmarkError("core counts must be ascending")
        if len(set(core_counts)) != len(core_counts):
            raise BenchmarkError("core counts must be distinct")
        self.suite = suite
        self.core_counts = list(core_counts)

    def run(self, executor: ClusterExecutor) -> SweepResult:
        """Execute the sweep."""
        return run_sweep(self.suite, executor, self.core_counts)
