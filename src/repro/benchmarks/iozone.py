"""The IOzone suite member (sequential write test).

One IOzone instance runs per node (the paper sweeps "different number of
nodes"), writing a node-local file.  The run is rendered as a single I/O
phase per participating node: core mostly blocked, disk streaming at its
sustained rate, a small memory share for the page-cache traffic.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..exceptions import BenchmarkError
from ..perfmodels.iozone import IOzoneModel
from ..sim.executor import ClusterExecutor
from ..sim.placement import breadth_first_placement
from ..sim.workload import Phase, PhaseKind, RankProgram
from .base import Benchmark, BuiltRun

__all__ = ["IOzoneBenchmark"]

#: CPU intensity of the writer process (mostly blocked in write(2)).
_IOZONE_INTENSITY = 0.15
#: Memory-bandwidth share of page-cache copies.
_IOZONE_MEMORY = 0.05


class IOzoneBenchmark(Benchmark):
    """IOzone write test, stressing the I/O subsystem.

    Parameters
    ----------
    file_bytes:
        Per-node file size; ignored when ``target_seconds`` is given.
        Should be several times DRAM for cache-honest rates.
    target_seconds:
        If set, the file size is derived so the run lasts about this long.
    model_kwargs:
        Extra parameters for :class:`~repro.perfmodels.iozone.IOzoneModel`.

    Note
    ----
    ``scale`` for this benchmark is the *node* count, matching the paper's
    Figure 4 x-axis.
    """

    name = "IOzone"
    metric_label = "B/s"

    def __init__(
        self,
        *,
        file_bytes: float = 64e9,
        target_seconds: Optional[float] = None,
        **model_kwargs,
    ):
        if file_bytes <= 0:
            raise BenchmarkError("file_bytes must be > 0")
        if target_seconds is not None and target_seconds <= 0:
            raise BenchmarkError("target_seconds must be > 0")
        self.file_bytes = file_bytes
        self.target_seconds = target_seconds
        self.model_kwargs = dict(model_kwargs)

    def build(self, executor: ClusterExecutor, scale: int) -> BuiltRun:
        """Compile an IOzone run on ``scale`` nodes (one writer per node)."""
        cluster = executor.cluster
        if scale > cluster.num_nodes:
            raise BenchmarkError(
                f"IOzone scale {scale} exceeds cluster's {cluster.num_nodes} nodes"
            )
        model = IOzoneModel(cluster=cluster, **self.model_kwargs)
        file_bytes = self.file_bytes
        if self.target_seconds is not None:
            file_bytes = model.file_size_for_time(self.target_seconds)
        prediction = model.predict(scale, file_bytes=file_bytes)

        # One rank per node: breadth-first placement of `scale` ranks puts
        # rank i on node i.
        placement = breadth_first_placement(cluster, scale)
        write = Phase(
            kind=PhaseKind.IO,
            duration_s=prediction.time_s,
            cpu_intensity=_IOZONE_INTENSITY,
            memory=_IOZONE_MEMORY,
            storage=1.0,
            label="iozone-write",
        )
        programs = tuple(
            RankProgram(rank=rank, phases=[write]) for rank in range(scale)
        )
        details: Dict[str, float] = {
            "file_bytes": float(file_bytes),
            "per_node_bandwidth": prediction.per_node_bandwidth,
            "predicted_time_s": prediction.time_s,
        }
        return BuiltRun(
            placement=placement,
            programs=programs,
            performance=prediction.aggregate_bandwidth,
            details=details,
        )
