"""The STREAM suite member.

Renders a Triad run as ``rounds`` memory-bound super-steps separated by
barriers.  Each rank's share of its node's sustained bandwidth is taken
from the :class:`~repro.perfmodels.stream.StreamModel`, so a node's memory
utilization sums to the model's saturation level — this is what makes
STREAM's *power* profile differ from HPL's (DRAM fully active, cores at
reduced intensity), reproducing the power gap the paper measures between
the two benchmarks.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..exceptions import BenchmarkError
from ..perfmodels.stream import StreamModel
from ..sim.executor import ClusterExecutor
from ..sim.placement import breadth_first_placement
from ..sim.workload import RankProgram, barrier, memory_phase
from .base import Benchmark, BuiltRun

__all__ = ["StreamBenchmark"]

#: CPU intensity of a core executing Triad (stalled on DRAM most cycles).
_STREAM_INTENSITY = 0.6


class StreamBenchmark(Benchmark):
    """STREAM Triad, stressing the memory subsystem.

    Parameters
    ----------
    array_elements:
        Per-rank array length (must dwarf caches; the default 20 M doubles
        is the STREAM reference size).
    iterations:
        Triad sweeps per rank; ignored when ``target_seconds`` is given.
    target_seconds:
        If set, the iteration count is derived per scale point so the run
        lasts approximately this long.
    intensity:
        CPU power intensity of a core executing Triad (mostly stalled on
        DRAM); see :class:`~repro.power.components.CPUPowerModel`.
    """

    name = "STREAM"
    metric_label = "B/s"

    def __init__(
        self,
        *,
        array_elements: int = 20_000_000,
        iterations: int = 100,
        target_seconds: Optional[float] = None,
        rounds: int = 4,
        intensity: float = _STREAM_INTENSITY,
    ):
        if array_elements < 1:
            raise BenchmarkError("array_elements must be >= 1")
        if iterations < 1:
            raise BenchmarkError("iterations must be >= 1")
        if target_seconds is not None and target_seconds <= 0:
            raise BenchmarkError("target_seconds must be > 0")
        if rounds < 1:
            raise BenchmarkError("rounds must be >= 1")
        if not 0 <= intensity <= 1:
            raise BenchmarkError("intensity must be in [0, 1]")
        self.intensity = intensity
        self.array_elements = array_elements
        self.iterations = iterations
        self.target_seconds = target_seconds
        self.rounds = rounds

    def build(self, executor: ClusterExecutor, scale: int) -> BuiltRun:
        """Compile a STREAM run on ``scale`` MPI ranks (breadth-first)."""
        cluster = executor.cluster
        model = StreamModel(cluster=cluster)
        placement = breadth_first_placement(cluster, scale)
        ranks_per_node = placement.max_ranks_per_node()
        iterations = self.iterations
        if self.target_seconds is not None:
            iterations = model.iterations_for_time(
                self.target_seconds,
                scale,
                array_elements=self.array_elements,
                ranks_per_node=ranks_per_node,
            )
        prediction = model.predict(
            scale,
            array_elements=self.array_elements,
            iterations=iterations,
            ranks_per_node=ranks_per_node,
        )
        # Fraction of the node's sustained bandwidth each rank consumes.
        node_sustained = cluster.node.sustained_memory_bandwidth
        per_rank_fraction = min(1.0, prediction.per_rank_bandwidth / node_sustained)

        slice_s = prediction.time_s / self.rounds
        programs = []
        for rank in range(scale):
            program = RankProgram(rank=rank)
            for _ in range(self.rounds):
                program.append(
                    memory_phase(
                        slice_s,
                        memory=per_rank_fraction,
                        intensity=self.intensity,
                        label="triad",
                    )
                )
                program.append(barrier())
            programs.append(program)

        details: Dict[str, float] = {
            "iterations": float(iterations),
            "array_elements": float(self.array_elements),
            "per_rank_bandwidth": prediction.per_rank_bandwidth,
            "predicted_time_s": prediction.time_s,
        }
        return BuiltRun(
            placement=placement,
            programs=tuple(programs),
            performance=prediction.aggregate_bandwidth,
            details=details,
        )
