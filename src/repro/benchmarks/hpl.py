"""The HPL suite member.

Compiles an :class:`~repro.perfmodels.hpl.HPLModel` prediction into rank
programs: the factorization is rendered as ``rounds`` alternating
compute/communicate super-steps separated by barriers (HPL's actual
``N/NB`` steps are far too fine to simulate individually and would only
refine the power trace below the meter's 1 Hz resolution).  All ranks carry
identical durations, so the simulated makespan equals the model's predicted
time and the reported GFLOPS equals the model's prediction.

Problem sizing policies:

* ``("fixed", N)`` — strong scaling with a fixed matrix (the paper's
  Figure 2 sweep);
* ``("memory", fraction)`` — classic capability sizing from DRAM;
* ``("time", seconds)`` — size for a target runtime (keeps suite members'
  runtimes comparable, which the weighted-TGI analysis assumes).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..exceptions import BenchmarkError
from ..perfmodels.hpl import HPLModel
from ..sim.executor import ClusterExecutor
from ..sim.placement import breadth_first_placement
from ..sim.workload import RankProgram, barrier, comm_phase, compute_phase
from .base import Benchmark, BuiltRun

__all__ = ["HPLBenchmark"]

#: Per-rank share of node memory bandwidth during the update kernel.
_HPL_MEMORY_PER_RANK = 0.04
#: NIC utilization while a rank is in its communication super-step.
_HPL_NIC_UTIL = 0.9
#: CPU intensity during the DGEMM-dominated compute super-steps.
_HPL_COMPUTE_INTENSITY = 1.0
#: CPU intensity while blocked in MPI broadcasts: HPL links busy-poll, so a
#: "communicating" core still burns close to full power.
_HPL_COMM_INTENSITY = 0.8


class HPLBenchmark(Benchmark):
    """High-Performance LINPACK, stressing the CPU subsystem.

    Parameters
    ----------
    sizing:
        ``("fixed", N)``, ``("memory", fraction)``, or ``("time", seconds)``.
    rounds:
        Number of compute/communicate super-steps rendered.
    model_kwargs:
        Extra parameters for :class:`~repro.perfmodels.hpl.HPLModel`
        (``dgemm_efficiency``, ``comm_volume_factor``, ...).
    """

    name = "HPL"
    metric_label = "FLOP/s"

    def __init__(
        self,
        *,
        sizing: Tuple[str, float] = ("memory", 0.8),
        rounds: int = 6,
        compute_intensity: float = _HPL_COMPUTE_INTENSITY,
        comm_intensity: float = _HPL_COMM_INTENSITY,
        memory_per_rank: float = _HPL_MEMORY_PER_RANK,
        **model_kwargs,
    ):
        mode, value = sizing
        if mode not in ("fixed", "memory", "time"):
            raise BenchmarkError(f"unknown sizing mode {mode!r}")
        if value <= 0:
            raise BenchmarkError(f"sizing value must be > 0, got {value}")
        if rounds < 1:
            raise BenchmarkError(f"rounds must be >= 1, got {rounds}")
        if not 0 <= compute_intensity <= 1:
            raise BenchmarkError("compute_intensity must be in [0, 1]")
        if not 0 <= comm_intensity <= 1:
            raise BenchmarkError("comm_intensity must be in [0, 1]")
        if not 0 <= memory_per_rank <= 1:
            raise BenchmarkError("memory_per_rank must be in [0, 1]")
        self.sizing = (mode, value)
        self.rounds = rounds
        self.compute_intensity = compute_intensity
        self.comm_intensity = comm_intensity
        self.memory_per_rank = memory_per_rank
        self.model_kwargs = dict(model_kwargs)

    def _problem_size(self, model: HPLModel, num_ranks: int) -> int:
        mode, value = self.sizing
        if mode == "fixed":
            n = int(value)
            if n < model.block_size:
                raise BenchmarkError(
                    f"fixed N={n} below block size {model.block_size}"
                )
            return n
        if mode == "memory":
            return model.problem_size_from_memory(memory_fraction=value)
        return model.problem_size_for_time(value, num_ranks)

    def build(self, executor: ClusterExecutor, scale: int) -> BuiltRun:
        """Compile an HPL run on ``scale`` MPI ranks (breadth-first placed)."""
        cluster = executor.cluster
        model = HPLModel(cluster=cluster, **self.model_kwargs)
        placement = breadth_first_placement(cluster, scale)
        ranks_per_node = placement.max_ranks_per_node()
        n = self._problem_size(model, scale)
        prediction = model.predict(n, scale, ranks_per_node=ranks_per_node)

        rounds = self.rounds
        comp_slice = prediction.compute_time_s / rounds
        comm_slice = prediction.comm_time_s / rounds
        # With accelerators present, the hybrid DGEMM keeps every card busy;
        # each rank contributes its per-rank share of full GPU utilization.
        acc_share = 0.0
        if cluster.node.accelerators:
            acc_share = min(1.0, 1.0 / ranks_per_node)
        programs = []
        for rank in range(scale):
            program = RankProgram(rank=rank)
            for _ in range(rounds):
                program.append(
                    compute_phase(
                        comp_slice,
                        intensity=self.compute_intensity,
                        memory=self.memory_per_rank,
                        accelerator=acc_share,
                        label="hpl-update",
                    )
                )
                if comm_slice > 0:
                    program.append(
                        comm_phase(
                            comm_slice,
                            nic=_HPL_NIC_UTIL,
                            intensity=self.comm_intensity,
                            label="hpl-bcast",
                        )
                    )
                program.append(barrier())
            programs.append(program)

        details: Dict[str, float] = {
            "problem_size": float(n),
            "flops": prediction.flops,
            "compute_time_s": prediction.compute_time_s,
            "comm_time_s": prediction.comm_time_s,
            "parallel_efficiency": prediction.parallel_efficiency,
            "predicted_time_s": prediction.total_time_s,
        }
        return BuiltRun(
            placement=placement,
            programs=tuple(programs),
            performance=prediction.performance_flops,
            details=details,
        )
