"""Benchmark abstraction and result container.

A :class:`Benchmark` knows how to *build* a run for a given cluster and
scale (compile its performance model into per-rank phase programs) and to
*run* it through a :class:`~repro.sim.executor.ClusterExecutor`.  The
returned :class:`BenchmarkResult` carries everything the TGI pipeline needs:
the benchmark's own performance metric (in its own units — the whole point
of TGI is aggregating across heterogeneous metrics), the measured power
trace, and the derived time/power/energy numbers used by the weighted means.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Tuple

from .. import telemetry as tele
from ..exceptions import BenchmarkError
from ..sim.executor import ClusterExecutor, RunRecord
from ..sim.placement import Placement
from ..sim.workload import RankProgram
from ..units import format_power, format_time

__all__ = ["Benchmark", "BenchmarkResult", "BuiltRun"]


@dataclass(frozen=True)
class BuiltRun:
    """A compiled benchmark run: placement, programs, predicted performance."""

    placement: Placement
    programs: Tuple[RankProgram, ...]
    performance: float  # in the benchmark's base metric units
    details: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class BenchmarkResult:
    """Outcome of one benchmark run on one system at one scale.

    Attributes
    ----------
    benchmark:
        Benchmark name (``"HPL"``, ``"STREAM"``, ``"IOzone"``).
    metric_label:
        Human label of the performance unit (``"FLOP/s"``, ``"B/s"``).
    performance:
        The benchmark's reported number in base units.
    scale:
        The benchmark's scale parameter (MPI ranks for HPL/STREAM, nodes
        for IOzone).
    record:
        Full simulation/measurement record.
    details:
        Model-specific extras (problem size, efficiency, ...).
    """

    benchmark: str
    metric_label: str
    performance: float
    scale: int
    record: RunRecord
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def time_s(self) -> float:
        """Wall-clock seconds of the run (the ``t_i`` of Eq. 10)."""
        return self.record.makespan_s

    @property
    def power_w(self) -> float:
        """Measured mean wall watts (the ``p_i`` of Eq. 12)."""
        return self.record.measured_mean_power_w

    @property
    def energy_j(self) -> float:
        """Measured energy in joules (the ``e_i`` of Eq. 11)."""
        # Mean metered power times wall-clock time: the standard way a
        # wall-plug meter log is turned into per-run energy, robust to the
        # log not covering the first/last fraction of a second.
        return self.power_w * self.time_s

    @property
    def energy_efficiency(self) -> float:
        """EE_i = performance / power (Eq. 2), in metric-units per watt."""
        if self.power_w <= 0:
            raise BenchmarkError("non-positive measured power")
        return self.performance / self.power_w

    def __str__(self) -> str:
        return (
            f"{self.benchmark}@{self.scale}: perf={self.performance:.4g} {self.metric_label}, "
            f"{format_time(self.time_s)}, {format_power(self.power_w)}"
        )


class Benchmark(abc.ABC):
    """One member of the suite (see module docstring)."""

    #: Benchmark name used as the key throughout the TGI pipeline.
    name: str = "benchmark"
    #: Label of the performance unit.
    metric_label: str = ""

    @abc.abstractmethod
    def build(self, executor: ClusterExecutor, scale: int) -> BuiltRun:
        """Compile a run at the given scale for the executor's cluster."""

    def run(self, executor: ClusterExecutor, scale: int) -> BenchmarkResult:
        """Build, simulate, and package one run."""
        cluster = executor.cluster.name
        with tele.span(
            "benchmark.run", benchmark=self.name, scale=scale, cluster=cluster
        ):
            built = self.build(executor, scale)
            record = executor.execute(
                built.placement, built.programs, label=f"{self.name}@{scale}"
            )
        result = BenchmarkResult(
            benchmark=self.name,
            metric_label=self.metric_label,
            performance=built.performance,
            scale=scale,
            record=record,
            details=dict(built.details),
        )
        if tele.active():
            labels = dict(benchmark=self.name, scale=str(scale), cluster=cluster)
            tele.count("tgi_benchmark_runs_total", benchmark=self.name)
            tele.gauge("tgi_benchmark_time_seconds", result.time_s, **labels)
            tele.gauge("tgi_benchmark_energy_joules", result.energy_j, **labels)
            tele.gauge("tgi_benchmark_power_watts", result.power_w, **labels)
        return result
