"""Benchmark suite: run all members at one scale point.

A :class:`BenchmarkSuite` is an ordered collection of benchmarks with
distinct names.  Running it at one scale point yields a
:class:`SuiteResult` — the per-benchmark results the TGI pipeline consumes
(performance, time, power, energy).

Scales differ per benchmark: the paper sweeps HPL and STREAM by MPI process
count and IOzone by node count, tied together by "a particular number of
cores" (Figure 5).  The suite therefore takes a *cores* value and maps it to
each benchmark's own scale via :meth:`BenchmarkSuite.scale_for`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from .. import telemetry as tele
from ..exceptions import BenchmarkError, ReproError
from ..sim.executor import ClusterExecutor
from .base import Benchmark, BenchmarkResult
from .iozone import IOzoneBenchmark

__all__ = ["BenchmarkSuite", "SuiteResult"]


@dataclass(frozen=True)
class SuiteResult:
    """All members' results at one scale point."""

    cores: int
    results: Tuple[BenchmarkResult, ...]

    def __post_init__(self) -> None:
        names = [r.benchmark for r in self.results]
        if len(set(names)) != len(names):
            raise BenchmarkError(f"duplicate benchmark names in suite result: {names}")

    @property
    def names(self) -> List[str]:
        """Benchmark names in suite order."""
        return [r.benchmark for r in self.results]

    def __iter__(self) -> Iterator[BenchmarkResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, name: str) -> BenchmarkResult:
        for result in self.results:
            if result.benchmark == name:
                return result
        raise KeyError(name)

    # Convenience maps for the metric layer -----------------------------
    @property
    def performances(self) -> Dict[str, float]:
        """name -> reported performance (base units)."""
        return {r.benchmark: r.performance for r in self.results}

    @property
    def powers_w(self) -> Dict[str, float]:
        """name -> measured mean wall watts."""
        return {r.benchmark: r.power_w for r in self.results}

    @property
    def times_s(self) -> Dict[str, float]:
        """name -> wall-clock seconds."""
        return {r.benchmark: r.time_s for r in self.results}

    @property
    def energies_j(self) -> Dict[str, float]:
        """name -> measured joules."""
        return {r.benchmark: r.energy_j for r in self.results}

    @property
    def efficiencies(self) -> Dict[str, float]:
        """name -> EE_i = performance / power (Eq. 2)."""
        return {r.benchmark: r.energy_efficiency for r in self.results}


class BenchmarkSuite:
    """An ordered set of uniquely-named benchmarks."""

    def __init__(self, benchmarks: Sequence[Benchmark]):
        if not benchmarks:
            raise BenchmarkError("suite needs at least one benchmark")
        names = [b.name for b in benchmarks]
        if len(set(names)) != len(names):
            raise BenchmarkError(f"duplicate benchmark names: {names}")
        self.benchmarks: Tuple[Benchmark, ...] = tuple(benchmarks)

    @property
    def names(self) -> List[str]:
        """Benchmark names in order."""
        return [b.name for b in self.benchmarks]

    def scale_for(self, benchmark: Benchmark, cores: int, executor: ClusterExecutor) -> int:
        """Map a core count to the benchmark's own scale parameter.

        IOzone runs one instance per node, so its scale is the node count
        covering ``cores`` under breadth-first placement; everything else
        scales by MPI rank = core.
        """
        if cores < 1:
            raise BenchmarkError(f"cores must be >= 1, got {cores}")
        if isinstance(benchmark, IOzoneBenchmark):
            num_nodes = executor.cluster.num_nodes
            cores_per_node = executor.cluster.node.cores
            # breadth-first: `cores` ranks touch min(cores, num_nodes) nodes;
            # full sweeps (cores = k * cores_per_node) map to k nodes.
            if cores >= num_nodes * cores_per_node:
                return num_nodes
            if cores % cores_per_node == 0:
                return max(1, cores // cores_per_node)
            return min(cores, num_nodes)
        return cores

    #: Valid failure policies for :meth:`run`.
    ON_ERROR_MODES = ("raise", "skip")

    def run(
        self, executor: ClusterExecutor, cores: int, *, on_error: str = "raise"
    ) -> SuiteResult:
        """Run every member at the scale implied by ``cores``.

        ``on_error`` selects the failure policy: ``"raise"`` (default)
        propagates the first benchmark failure; ``"skip"`` contains
        library-raised errors (:class:`~repro.exceptions.ReproError`,
        including injected node crashes) to the failing member and returns
        a *partial* :class:`SuiteResult` over the survivors — the input to
        the degraded-TGI path.  A suite with no survivors still raises.
        """
        if on_error not in self.ON_ERROR_MODES:
            raise BenchmarkError(
                f"on_error must be one of {self.ON_ERROR_MODES}, got {on_error!r}"
            )
        with tele.span(
            "suite.run", cores=cores, cluster=executor.cluster.name
        ):
            results = []
            failures = []
            for benchmark in self.benchmarks:
                scale = self.scale_for(benchmark, cores, executor)
                try:
                    results.append(benchmark.run(executor, scale))
                except ReproError as exc:
                    if on_error == "raise":
                        raise
                    failures.append((benchmark.name, exc))
                    if tele.active():
                        tele.count(
                            "tgi_benchmarks_skipped_total", benchmark=benchmark.name
                        )
            if failures and not results:
                names = [name for name, _ in failures]
                raise BenchmarkError(
                    f"every benchmark failed at cores={cores}: {names}; "
                    f"first error: {failures[0][1]}"
                ) from failures[0][1]
        return SuiteResult(cores=cores, results=tuple(results))
