"""The effective-bandwidth suite member — extension beyond the paper.

Stresses the interconnect the way HPCC's b_eff does: ring/random exchanges
over a ladder of message sizes.  Power profile: cores blocked in MPI
(low intensity), NIC saturated.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..exceptions import BenchmarkError
from ..perfmodels.network import EffectiveBandwidthModel
from ..sim.executor import ClusterExecutor
from ..sim.placement import breadth_first_placement
from ..sim.workload import RankProgram, barrier, comm_phase
from .base import Benchmark, BuiltRun

__all__ = ["EffectiveBandwidthBenchmark"]


class EffectiveBandwidthBenchmark(Benchmark):
    """b_eff-style network benchmark (reports aggregate bytes/s)."""

    name = "b_eff"
    metric_label = "B/s"

    def __init__(
        self,
        *,
        rounds: int = 1000,
        target_seconds: Optional[float] = None,
        phases: int = 4,
    ):
        if rounds < 1:
            raise BenchmarkError("rounds must be >= 1")
        if target_seconds is not None and target_seconds <= 0:
            raise BenchmarkError("target_seconds must be > 0")
        if phases < 1:
            raise BenchmarkError("phases must be >= 1")
        self.rounds = rounds
        self.target_seconds = target_seconds
        self.phases = phases

    def build(self, executor: ClusterExecutor, scale: int) -> BuiltRun:
        """Compile a b_eff run on ``scale`` MPI ranks (breadth-first)."""
        cluster = executor.cluster
        model = EffectiveBandwidthModel(cluster=cluster)
        placement = breadth_first_placement(cluster, scale)
        ranks_per_node = placement.max_ranks_per_node()
        rounds = self.rounds
        if self.target_seconds is not None:
            rounds = model.rounds_for_time(
                self.target_seconds, scale, ranks_per_node=ranks_per_node
            )
        prediction = model.predict(scale, rounds=rounds, ranks_per_node=ranks_per_node)
        slice_s = prediction.time_s / self.phases
        programs = []
        for rank in range(scale):
            program = RankProgram(rank=rank)
            for _ in range(self.phases):
                program.append(
                    comm_phase(
                        slice_s,
                        nic=min(1.0, 1.0 / ranks_per_node),
                        label="beff-exchange",
                    )
                )
                program.append(barrier())
            programs.append(program)
        details: Dict[str, float] = {
            "rounds": float(rounds),
            "per_rank_bandwidth": prediction.per_rank_bandwidth,
            "predicted_time_s": prediction.time_s,
        }
        return BuiltRun(
            placement=placement,
            programs=tuple(programs),
            performance=prediction.aggregate_bandwidth,
            details=details,
        )
