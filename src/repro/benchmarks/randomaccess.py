"""The RandomAccess (GUPS) suite member — extension beyond the paper.

Exercises memory *latency* (HPCC's complement to STREAM's bandwidth test).
Power profile: cores mostly stalled on cache misses (low intensity), DRAM
moderately busy (random accesses waste most of each burst), NIC busy when
the bucketed exchange is network-bound.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..exceptions import BenchmarkError
from ..perfmodels.randomaccess import RandomAccessModel
from ..sim.executor import ClusterExecutor
from ..sim.placement import breadth_first_placement
from ..sim.workload import Phase, PhaseKind, RankProgram, barrier
from .base import Benchmark, BuiltRun

__all__ = ["RandomAccessBenchmark"]

#: Stalled-on-miss core intensity.
_GUPS_INTENSITY = 0.35
#: DRAM utilization: random 8 B updates waste most of each 64 B burst, so
#: even a saturated controller moves a modest fraction of peak bandwidth.
_GUPS_MEMORY = 0.35


class RandomAccessBenchmark(Benchmark):
    """HPCC RandomAccess, stressing memory latency (reports updates/s).

    Parameters
    ----------
    updates_per_rank:
        Updates each rank issues; ignored when ``target_seconds`` is set.
    target_seconds:
        If set, the update count is derived per scale point.
    model_kwargs:
        Extra parameters for :class:`~repro.perfmodels.randomaccess.RandomAccessModel`.
    """

    name = "RandomAccess"
    metric_label = "UP/s"

    def __init__(
        self,
        *,
        updates_per_rank: float = 4e9,
        target_seconds: Optional[float] = None,
        rounds: int = 2,
        **model_kwargs,
    ):
        if updates_per_rank <= 0:
            raise BenchmarkError("updates_per_rank must be > 0")
        if target_seconds is not None and target_seconds <= 0:
            raise BenchmarkError("target_seconds must be > 0")
        if rounds < 1:
            raise BenchmarkError("rounds must be >= 1")
        self.updates_per_rank = updates_per_rank
        self.target_seconds = target_seconds
        self.rounds = rounds
        self.model_kwargs = dict(model_kwargs)

    def build(self, executor: ClusterExecutor, scale: int) -> BuiltRun:
        """Compile a GUPS run on ``scale`` MPI ranks (breadth-first)."""
        cluster = executor.cluster
        model = RandomAccessModel(cluster=cluster, **self.model_kwargs)
        placement = breadth_first_placement(cluster, scale)
        ranks_per_node = placement.max_ranks_per_node()
        updates = self.updates_per_rank
        if self.target_seconds is not None:
            updates = model.updates_for_time(
                self.target_seconds, scale, ranks_per_node=ranks_per_node
            )
        prediction = model.predict(
            scale, updates_per_rank=updates, ranks_per_node=ranks_per_node
        )
        nic_util = 0.9 if prediction.network_limited else 0.2
        slice_s = prediction.time_s / self.rounds
        update_phase = Phase(
            kind=PhaseKind.MEMORY,
            duration_s=slice_s,
            cpu_intensity=_GUPS_INTENSITY,
            memory=_GUPS_MEMORY / ranks_per_node,
            nic=min(1.0, nic_util / ranks_per_node),
            label="gups-update",
        )
        programs = []
        for rank in range(scale):
            program = RankProgram(rank=rank)
            for _ in range(self.rounds):
                program.append(update_phase)
                program.append(barrier())
            programs.append(program)
        details: Dict[str, float] = {
            "updates_per_rank": float(updates),
            "gups": prediction.gups,
            "network_limited": float(prediction.network_limited),
            "predicted_time_s": prediction.time_s,
        }
        return BuiltRun(
            placement=placement,
            programs=tuple(programs),
            performance=prediction.updates_per_second,
            details=details,
        )
