"""The benchmark suite (paper Section IV-A).

Three benchmarks stress the three subsystems the paper targets:

* :class:`~repro.benchmarks.hpl.HPLBenchmark` — CPU (reports FLOP/s);
* :class:`~repro.benchmarks.stream.StreamBenchmark` — memory (bytes/s);
* :class:`~repro.benchmarks.iozone.IOzoneBenchmark` — disk (bytes/s).

Each benchmark compiles its performance-model prediction into per-rank phase
programs, executes them on the simulated, metered cluster, and returns a
:class:`~repro.benchmarks.base.BenchmarkResult` carrying the reported
performance plus the full power record.  :class:`~repro.benchmarks.suite.BenchmarkSuite`
runs all members at one scale point; :class:`~repro.benchmarks.runner.ScalingSweep`
sweeps the suite over core counts the way the paper's figures do.
"""

from .base import Benchmark, BenchmarkResult
from .hpl import HPLBenchmark
from .stream import StreamBenchmark
from .iozone import IOzoneBenchmark
from .randomaccess import RandomAccessBenchmark
from .network import EffectiveBandwidthBenchmark
from .suite import BenchmarkSuite, SuiteResult
from .runner import ScalingSweep, SweepResult, ScalePoint, run_sweep

__all__ = [
    "Benchmark",
    "BenchmarkResult",
    "HPLBenchmark",
    "StreamBenchmark",
    "IOzoneBenchmark",
    "RandomAccessBenchmark",
    "EffectiveBandwidthBenchmark",
    "BenchmarkSuite",
    "SuiteResult",
    "ScalingSweep",
    "SweepResult",
    "ScalePoint",
    "run_sweep",
]
