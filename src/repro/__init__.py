"""repro — The Green Index (TGI) for HPC systems, with a simulated substrate.

A production-quality reproduction of Subramaniam & Feng, *The Green Index:
A Metric for Evaluating System-Wide Energy Efficiency in HPC Systems*
(IPDPSW 2012).

Quick tour
----------
>>> from repro import presets, ClusterExecutor, BenchmarkSuite
>>> from repro import HPLBenchmark, StreamBenchmark, IOzoneBenchmark
>>> from repro import ReferenceSet, TGICalculator
>>> fire = presets.fire()
>>> executor = ClusterExecutor(fire, rng=7)
>>> suite = BenchmarkSuite([
...     HPLBenchmark(sizing=("fixed", 36288)),
...     StreamBenchmark(target_seconds=45, intensity=0.4),
...     IOzoneBenchmark(target_seconds=45),
... ])
>>> result = suite.run(executor, cores=128)

Build a reference from another system's run, then compute TGI:

>>> # reference, ref_result = ...  (see repro.experiments.build_reference)
>>> # tgi = TGICalculator(reference).compute(result)

Subpackages
-----------
:mod:`repro.cluster`
    Hardware specifications and the paper's Fire/SystemG presets.
:mod:`repro.power`
    Component power models, PSU curves, the Watts Up? PRO meter model,
    power traces, cooling (centre-wide extension), DVFS.
:mod:`repro.sim`
    Discrete-event execution of phase-based MPI workloads on a metered
    cluster.
:mod:`repro.perfmodels`
    Analytic performance models (HPL, STREAM, IOzone, Amdahl, roofline).
:mod:`repro.kernels`
    Real host kernels validating the models at laptop scale.
:mod:`repro.benchmarks`
    The benchmark suite and scaling sweeps.
:mod:`repro.core`
    The TGI metric: EE, REE, weighting schemes, TGI, EDP, ranking,
    desired-property analysis, reports.
:mod:`repro.analysis`
    Pearson/Spearman correlation, means, curve characterization, weight
    sensitivity.
:mod:`repro.experiments`
    Drivers regenerating every table and figure of the paper.
:mod:`repro.telemetry`
    Observability: span tracing, a metrics registry with Prometheus
    export, and the Eq. 10-12 energy-attribution view.
:mod:`repro.faults`
    Deterministic fault injection (transient job failures, meter dropout,
    node crashes) exercising the campaign layer's containment, retry,
    and partial-TGI degradation paths.
"""

from .cluster import presets
from .cluster.cluster import ClusterSpec
from .cluster.node import NodeSpec
from .benchmarks import (
    Benchmark,
    BenchmarkResult,
    BenchmarkSuite,
    HPLBenchmark,
    IOzoneBenchmark,
    ScalingSweep,
    StreamBenchmark,
    SuiteResult,
    SweepResult,
)
from .core import (
    ArithmeticMeanWeights,
    CustomWeights,
    EnergyWeights,
    PowerWeights,
    ReferenceSet,
    TGICalculator,
    TGIResult,
    TGISeries,
    TimeWeights,
    rank_systems,
    tgi_from_components,
)
from .power import NodePowerModel, PowerTrace, WallPlugMeter
from .sim import ClusterExecutor
from .exceptions import CampaignExecutionError, InjectedFault, ReproError
from .faults import FaultInjector, FaultPlan

__version__ = "1.10.0"

from .campaign import (  # noqa: E402 - needs __version__ for cache stamps
    CampaignJob,
    CampaignResult,
    CampaignRunner,
    ClusterRef,
    ResultCache,
)
from .telemetry import TelemetrySession  # noqa: E402 - instrumented layers above
from .fleet import (  # noqa: E402 - rides the campaign subsystem
    FleetRanking,
    FleetRankingPipeline,
    evaluate_fleet,
)

__all__ = [
    "presets",
    "ClusterSpec",
    "NodeSpec",
    "Benchmark",
    "BenchmarkResult",
    "BenchmarkSuite",
    "HPLBenchmark",
    "StreamBenchmark",
    "IOzoneBenchmark",
    "ScalingSweep",
    "SweepResult",
    "SuiteResult",
    "ReferenceSet",
    "TGICalculator",
    "TGIResult",
    "TGISeries",
    "ArithmeticMeanWeights",
    "TimeWeights",
    "EnergyWeights",
    "PowerWeights",
    "CustomWeights",
    "rank_systems",
    "tgi_from_components",
    "NodePowerModel",
    "PowerTrace",
    "WallPlugMeter",
    "ClusterExecutor",
    "CampaignJob",
    "CampaignResult",
    "CampaignRunner",
    "ClusterRef",
    "ResultCache",
    "TelemetrySession",
    "FleetRanking",
    "FleetRankingPipeline",
    "evaluate_fleet",
    "ReproError",
    "CampaignExecutionError",
    "InjectedFault",
    "FaultPlan",
    "FaultInjector",
    "__version__",
]
