"""Executing scenarios into records.

The runner is deliberately small: setup once (outside the timed region),
run ``repeats`` timed invocations on ``perf_counter``/``process_time``,
validate the returned derived metrics against the scenario's declared
specs, and stamp the record with the environment fingerprint, library
version, and absolute UTC timestamp.

Every run is threaded through telemetry: a ``perfwatch.<scenario>`` span
wraps the whole scenario with one ``perfwatch.repeat`` child per timed
invocation, so a perf-watch run under ``--telemetry`` is itself a traced
session.  With ``profile=True`` one extra *untimed* invocation runs under
cProfile and its top-N cumulative hotspots are attached to the record —
profiling never contaminates the timings it is trying to explain.
"""

from __future__ import annotations

import time
from typing import Dict, Mapping, Optional

from .. import __version__
from .. import telemetry as tele
from ..exceptions import PerfWatchError
from ..telemetry.profiling import profile_callable
from .registry import BenchScenario
from .schema import (
    BenchRecord,
    MetricValue,
    environment_fingerprint,
    utc_timestamp,
)

__all__ = ["run_scenario"]


def _invoke(scn: BenchScenario, state: object) -> Optional[Mapping[str, float]]:
    if scn.setup is not None:
        return scn.fn(state, **scn.params)
    return scn.fn(**scn.params)


def _validated_metrics(
    scn: BenchScenario, raw: Optional[Mapping[str, float]]
) -> Dict[str, MetricValue]:
    declared = {m.name: m for m in scn.metrics}
    returned = dict(raw or {})
    missing = sorted(set(declared) - set(returned))
    unexpected = sorted(set(returned) - set(declared))
    if missing or unexpected:
        raise PerfWatchError(
            f"{scn.scenario_id}: metric mismatch "
            f"(missing {missing or '[]'}, unexpected {unexpected or '[]'}); "
            "declared MetricSpecs and returned keys must agree exactly"
        )
    out: Dict[str, MetricValue] = {}
    for name, spec in declared.items():
        value = float(returned[name])
        out[name] = MetricValue(value=value, unit=spec.unit, direction=spec.direction)
    return out


def run_scenario(
    scn: BenchScenario,
    *,
    repeats: Optional[int] = None,
    profile: bool = False,
    profile_top: int = 10,
) -> BenchRecord:
    """Execute one scenario and return its :class:`BenchRecord`."""
    n = int(repeats) if repeats else scn.repeats
    if n < 1:
        raise PerfWatchError(f"repeats must be >= 1, got {n}")
    with tele.span(
        f"perfwatch.{scn.scenario_id}", tier=scn.tier, repeats=n
    ) as scenario_span:
        state = None
        if scn.setup is not None:
            with tele.span("perfwatch.setup", scenario=scn.scenario_id):
                state = scn.setup()
        walls = []
        cpus = []
        raw_metrics: Optional[Mapping[str, float]] = None
        for index in range(n):
            with tele.span(
                "perfwatch.repeat", scenario=scn.scenario_id, index=index
            ):
                wall0 = time.perf_counter()
                cpu0 = time.process_time()
                raw_metrics = _invoke(scn, state)
                cpus.append(time.process_time() - cpu0)
                walls.append(time.perf_counter() - wall0)
        hotspots = None
        if profile:
            with tele.span("perfwatch.profile", scenario=scn.scenario_id):
                _, hotspots = profile_callable(
                    _invoke, scn, state, top=profile_top
                )
        scenario_span.set(wall_best_s=min(walls))
    metrics = _validated_metrics(scn, raw_metrics)
    timestamp_unix, timestamp_utc = utc_timestamp()
    return BenchRecord(
        scenario_id=scn.scenario_id,
        tier=scn.tier,
        params=dict(scn.params),
        repeats=n,
        wall_s=tuple(walls),
        cpu_s=tuple(cpus),
        metrics=metrics,
        environment=environment_fingerprint(),
        library_version=__version__,
        timestamp_unix=timestamp_unix,
        timestamp_utc=timestamp_utc,
        profile=tuple(hotspots) if hotspots is not None else None,
    )
