"""Statistical baselines and the improved/stable/regressed verdict.

The classifier deliberately avoids naive fixed thresholds.  The baseline
for a metric is the bootstrap confidence interval of the mean of its
recent history (:func:`repro.analysis.bootstrap.bootstrap_mean_ci` — the
same machinery behind the Table II uncertainty analysis), widened by a
small minimum-effect band so microscopic-but-significant shifts on very
tight histories do not page anyone.  A new value inside the widened
interval is ``stable``; outside it, the metric's declared direction
decides ``improved`` vs ``regressed``.

Edge cases are first-class, not accidents:

* empty history → ``no-baseline`` (first run of a scenario);
* single-sample history → the interval collapses to that sample, and the
  min-effect band does the tolerating;
* zero-variance history → same collapse; an exactly-equal new value is
  ``stable``;
* direction flips — ``wall_s`` (lower is better) and GFLOPS (higher is
  better) classify symmetrically.

Everything is seeded and deterministic: the same history and new value
always produce the same verdict.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.bootstrap import bootstrap_mean_ci
from ..exceptions import PerfWatchError
from .schema import HIGHER_IS_BETTER, LOWER_IS_BETTER, BenchRecord

__all__ = [
    "DEFAULT_CONFIDENCE",
    "DEFAULT_MIN_EFFECT",
    "DEFAULT_RESAMPLES",
    "DEFAULT_WINDOW",
    "Verdict",
    "MetricVerdict",
    "classify_value",
    "classify_record",
    "overall_verdict",
]

DEFAULT_CONFIDENCE = 0.95
DEFAULT_RESAMPLES = 2000
#: Relative band added around the CI: changes smaller than this fraction
#: of the baseline mean are never flagged, however tight the interval.
DEFAULT_MIN_EFFECT = 0.05
#: How many most-recent records feed the baseline.
DEFAULT_WINDOW = 20
#: Fixed bootstrap seed — verdicts must be reproducible.
_BASELINE_SEED = 20120521


class Verdict(str, enum.Enum):
    """Classification of one new measurement against its baseline."""

    IMPROVED = "improved"
    STABLE = "stable"
    REGRESSED = "regressed"
    NO_BASELINE = "no-baseline"

    def __str__(self) -> str:  # render as the plain value in tables/JSON
        return self.value


@dataclass(frozen=True)
class MetricVerdict:
    """One metric's verdict with the numbers behind it."""

    metric: str
    direction: str
    new_value: float
    verdict: Verdict
    baseline_n: int
    baseline_mean: Optional[float] = None
    ci_low: Optional[float] = None
    ci_high: Optional[float] = None
    delta_fraction: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "metric": self.metric,
            "direction": self.direction,
            "new_value": self.new_value,
            "verdict": self.verdict.value,
            "baseline_n": self.baseline_n,
            "baseline_mean": self.baseline_mean,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "delta_fraction": self.delta_fraction,
        }


def classify_value(
    baseline: Sequence[float],
    new_value: float,
    *,
    metric: str = "wall_s",
    direction: str = LOWER_IS_BETTER,
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    min_effect: float = DEFAULT_MIN_EFFECT,
) -> MetricVerdict:
    """Classify ``new_value`` against a baseline series (see module doc)."""
    if direction not in (LOWER_IS_BETTER, HIGHER_IS_BETTER):
        raise PerfWatchError(f"unknown metric direction {direction!r}")
    if min_effect < 0:
        raise PerfWatchError(f"min_effect must be >= 0, got {min_effect}")
    values = [float(v) for v in baseline]
    if not values:
        return MetricVerdict(
            metric=metric,
            direction=direction,
            new_value=float(new_value),
            verdict=Verdict.NO_BASELINE,
            baseline_n=0,
        )
    ci = bootstrap_mean_ci(
        values,
        confidence=confidence,
        resamples=resamples,
        rng=_BASELINE_SEED,
    )
    mean = ci.estimate
    slack = min_effect * (abs(mean) if mean != 0 else 1.0)
    low = ci.low - slack
    high = ci.high + slack
    new = float(new_value)
    delta = (new - mean) / abs(mean) if mean != 0 else None
    if low <= new <= high:
        verdict = Verdict.STABLE
    elif (new < low) == (direction == LOWER_IS_BETTER):
        verdict = Verdict.IMPROVED
    else:
        verdict = Verdict.REGRESSED
    return MetricVerdict(
        metric=metric,
        direction=direction,
        new_value=new,
        verdict=verdict,
        baseline_n=len(values),
        baseline_mean=mean,
        ci_low=ci.low,
        ci_high=ci.high,
        delta_fraction=delta,
    )


def classify_record(
    history: Sequence[BenchRecord],
    new: BenchRecord,
    *,
    window: int = DEFAULT_WINDOW,
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    min_effect: float = DEFAULT_MIN_EFFECT,
) -> List[MetricVerdict]:
    """Classify every metric of ``new`` against prior records of its scenario.

    ``history`` is the prior records in append order (the new record must
    *not* be among them); only the trailing ``window`` records feed each
    metric's baseline, and records that never measured a given metric are
    skipped rather than treated as zeros.
    """
    if window < 1:
        raise PerfWatchError(f"window must be >= 1, got {window}")
    prior = [r for r in history if r.scenario_id == new.scenario_id]
    out: List[MetricVerdict] = []
    for name, (value, direction) in new.baseline_metrics().items():
        series = [
            r.baseline_metrics()[name][0]
            for r in prior[-window:]
            if name in r.baseline_metrics()
        ]
        out.append(
            classify_value(
                series,
                value,
                metric=name,
                direction=direction,
                confidence=confidence,
                resamples=resamples,
                min_effect=min_effect,
            )
        )
    return out


#: Worst-first severity order used to fold metric verdicts into one.
_SEVERITY = (
    Verdict.REGRESSED,
    Verdict.NO_BASELINE,
    Verdict.IMPROVED,
    Verdict.STABLE,
)


def overall_verdict(verdicts: Sequence[MetricVerdict]) -> Verdict:
    """Fold per-metric verdicts into one scenario verdict.

    Any regression wins; otherwise a missing baseline outranks cosmetic
    good news (a scenario you cannot judge is not "improved"); otherwise
    any improvement; otherwise stable.
    """
    if not verdicts:
        return Verdict.NO_BASELINE
    present = {v.verdict for v in verdicts}
    for level in _SEVERITY:
        if level in present:
            return level
    return Verdict.STABLE
