"""Content-addressed history store and ``BENCH_<scenario>.json`` trajectories.

Layout under the store root (default ``.perfwatch/``)::

    objects/<sha256>.json   one record, canonical JSON (content-addressed)
    index.json              {"scenarios": {id: [key, ...]}} in append order

Appending the same record content twice stores one object but two index
entries — a repeat observation of identical numbers is still an
observation.  The repo-root trajectory files are a *view* of the store:
``BENCH_<scenario>.json`` holds the scenario's full record list in append
order, serialized with sorted keys and a fixed indent so the bytes are a
pure function of the records (tested in ``tests/test_perfwatch_store.py``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..exceptions import PerfWatchError
from ..serialization import atomic_write_text
from .schema import (
    PERFWATCH_VERSION,
    BenchRecord,
    canonical_json,
    record_from_dict,
    record_key,
    record_to_dict,
)

__all__ = ["DEFAULT_HISTORY_DIR", "HistoryStore", "trajectory_path"]

#: Default history-store directory, relative to the working tree root.
DEFAULT_HISTORY_DIR = ".perfwatch"


def trajectory_path(directory: Union[str, Path], scenario_id: str) -> Path:
    """Where a scenario's trajectory file lives: ``BENCH_<scenario>.json``."""
    return Path(directory) / f"BENCH_{scenario_id}.json"


class HistoryStore:
    """Append-only, content-addressed store of :class:`BenchRecord`\\ s."""

    def __init__(self, root: Union[str, Path] = DEFAULT_HISTORY_DIR):
        self.root = Path(root)
        self._objects = self.root / "objects"
        self._index_path = self.root / "index.json"
        self._index: Optional[Dict[str, List[str]]] = None

    # -- index ---------------------------------------------------------
    def _load_index(self) -> Dict[str, List[str]]:
        if self._index is None:
            if self._index_path.exists():
                data = json.loads(self._index_path.read_text())
                version = data.get("perfwatch_version")
                if version != PERFWATCH_VERSION:
                    raise PerfWatchError(
                        f"history index version {version!r} not supported "
                        f"(this build reads version {PERFWATCH_VERSION})"
                    )
                self._index = {
                    str(k): list(v) for k, v in dict(data["scenarios"]).items()
                }
            else:
                self._index = {}
        return self._index

    def _write_index(self) -> None:
        index = self._load_index()
        payload = {
            "perfwatch_version": PERFWATCH_VERSION,
            "scenarios": {k: index[k] for k in sorted(index)},
        }
        self.root.mkdir(parents=True, exist_ok=True)
        # Atomic: a crash mid-write must not corrupt the append-only history.
        atomic_write_text(
            self._index_path, json.dumps(payload, sort_keys=True, indent=2) + "\n"
        )

    # -- objects -------------------------------------------------------
    def append(self, record: BenchRecord) -> str:
        """Store a record; returns its content key."""
        key = record_key(record)
        self._objects.mkdir(parents=True, exist_ok=True)
        obj_path = self._objects / f"{key}.json"
        if not obj_path.exists():
            atomic_write_text(obj_path, canonical_json(record_to_dict(record)) + "\n")
        index = self._load_index()
        index.setdefault(record.scenario_id, []).append(key)
        self._write_index()
        return key

    def get(self, key: str) -> BenchRecord:
        """Load one record by content key."""
        obj_path = self._objects / f"{key}.json"
        if not obj_path.exists():
            raise PerfWatchError(f"no perf-watch object {key!r} under {self.root}")
        return record_from_dict(json.loads(obj_path.read_text()))

    # -- queries -------------------------------------------------------
    def scenario_ids(self) -> List[str]:
        """Scenarios with at least one record, sorted."""
        return sorted(self._load_index())

    def keys(self, scenario_id: str) -> List[str]:
        """A scenario's record keys in append order (empty if none)."""
        return list(self._load_index().get(scenario_id, []))

    def records(self, scenario_id: str) -> List[BenchRecord]:
        """A scenario's records in append order."""
        return [self.get(key) for key in self.keys(scenario_id)]

    # -- trajectory views ---------------------------------------------
    def write_trajectory(
        self, scenario_id: str, directory: Union[str, Path] = "."
    ) -> Path:
        """Write ``BENCH_<scenario>.json`` for one scenario; returns the path."""
        records = self.records(scenario_id)
        if not records:
            raise PerfWatchError(f"no history for scenario {scenario_id!r}")
        payload = {
            "perfwatch_version": PERFWATCH_VERSION,
            "scenario": scenario_id,
            "records": [record_to_dict(r) for r in records],
        }
        target = trajectory_path(directory, scenario_id)
        target.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(target, json.dumps(payload, sort_keys=True, indent=2) + "\n")
        return target

    def write_trajectories(self, directory: Union[str, Path] = ".") -> List[Path]:
        """Write every scenario's trajectory file; returns the paths."""
        return [
            self.write_trajectory(scenario_id, directory)
            for scenario_id in self.scenario_ids()
        ]
