"""perf-watch: continuous benchmarking with recorded history.

The paper's argument is longitudinal — efficiency claims only mean
something against a recorded trajectory of the same fixed workload — and
this subsystem applies that discipline to the repository itself:

:mod:`~repro.perfwatch.registry`
    :class:`BenchScenario` + the :func:`scenario` decorator; every
    ``benchmarks/bench_*.py`` script registers its measurements here, and
    :func:`discover` loads them without pytest.
:mod:`~repro.perfwatch.schema`
    :class:`BenchRecord` — the structured, content-addressable result
    form (params, repeats, wall/CPU times, derived metrics, environment
    fingerprint, library version, absolute UTC timestamp).
:mod:`~repro.perfwatch.store`
    :class:`HistoryStore` — append-only object store plus the repo-root
    ``BENCH_<scenario>.json`` trajectory files.
:mod:`~repro.perfwatch.baseline`
    Bootstrap-CI baselines and the improved/stable/regressed/no-baseline
    verdict (no naive thresholds).
:mod:`~repro.perfwatch.report`
    Terminal trend report, record comparison, and the ``--json`` payload.
:mod:`~repro.perfwatch.runner`
    Executes a scenario into a record, traced through telemetry, with
    opt-in cProfile hotspots.

Surfaced on the CLI as ``tgi bench run | list | report | compare``; see
``docs/perfwatch.md``.
"""

from .baseline import (
    MetricVerdict,
    Verdict,
    classify_record,
    classify_value,
    overall_verdict,
)
from .contexts import reset_shared_context, shared_context
from .registry import (
    TIERS,
    BenchScenario,
    clear_registry,
    default_bench_dir,
    discover,
    get_scenario,
    register,
    scenario,
    scenarios,
)
from .report import (
    ScenarioReport,
    build_report,
    render_compare,
    render_report,
    render_trajectory,
    report_to_dict,
)
from .runner import run_scenario
from .schema import (
    HIGHER_IS_BETTER,
    LOWER_IS_BETTER,
    PERFWATCH_VERSION,
    BenchRecord,
    MetricSpec,
    MetricValue,
    canonical_json,
    environment_fingerprint,
    record_from_dict,
    record_key,
    record_to_dict,
    utc_timestamp,
)
from .store import DEFAULT_HISTORY_DIR, HistoryStore, trajectory_path

__all__ = [
    "MetricVerdict",
    "Verdict",
    "classify_record",
    "classify_value",
    "overall_verdict",
    "reset_shared_context",
    "shared_context",
    "TIERS",
    "BenchScenario",
    "clear_registry",
    "default_bench_dir",
    "discover",
    "get_scenario",
    "register",
    "scenario",
    "scenarios",
    "ScenarioReport",
    "build_report",
    "render_compare",
    "render_report",
    "render_trajectory",
    "report_to_dict",
    "run_scenario",
    "HIGHER_IS_BETTER",
    "LOWER_IS_BETTER",
    "PERFWATCH_VERSION",
    "BenchRecord",
    "MetricSpec",
    "MetricValue",
    "canonical_json",
    "environment_fingerprint",
    "record_from_dict",
    "record_key",
    "record_to_dict",
    "utc_timestamp",
    "DEFAULT_HISTORY_DIR",
    "HistoryStore",
    "trajectory_path",
]
