"""The perf-watch result schema: structured, content-addressable records.

One :class:`BenchRecord` is one execution of one registered scenario:
identity (scenario id, params, tier), measurement (per-repeat wall and CPU
seconds plus declared derived metrics), and provenance (environment
fingerprint, library version, absolute UTC timestamp).  Records serialize
to a *canonical* JSON form — sorted keys, no whitespace, no NaN — whose
SHA-256 digest is the record's content address in the history store
(:mod:`repro.perfwatch.store`).

Timestamps are deliberately split from identity-free content: two runs
with identical measurements but different timestamps are different
records.  That is what makes the ``BENCH_<scenario>.json`` trajectory a
*history* rather than a set.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Dict, Mapping, Optional, Tuple

from ..exceptions import PerfWatchError

__all__ = [
    "PERFWATCH_VERSION",
    "LOWER_IS_BETTER",
    "HIGHER_IS_BETTER",
    "MetricSpec",
    "MetricValue",
    "BenchRecord",
    "canonical_json",
    "environment_fingerprint",
    "record_from_dict",
    "record_key",
    "record_to_dict",
    "utc_timestamp",
]

#: Schema version stamped on every record, trajectory, and report.
PERFWATCH_VERSION = 1

LOWER_IS_BETTER = "lower"
HIGHER_IS_BETTER = "higher"
_DIRECTIONS = (LOWER_IS_BETTER, HIGHER_IS_BETTER)


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one derived metric a scenario reports.

    ``direction`` states which way *better* points: ``"lower"`` for wall
    time, ``"higher"`` for GFLOPS — the regression classifier needs it to
    tell an improvement from a regression.
    """

    name: str
    unit: str = ""
    direction: str = LOWER_IS_BETTER
    help: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise PerfWatchError("metric name must be non-empty")
        if self.direction not in _DIRECTIONS:
            raise PerfWatchError(
                f"metric {self.name!r} direction must be one of {_DIRECTIONS}, "
                f"got {self.direction!r}"
            )


@dataclass(frozen=True)
class MetricValue:
    """One measured value together with its spec's unit and direction."""

    value: float
    unit: str = ""
    direction: str = LOWER_IS_BETTER


def utc_timestamp(at: Optional[float] = None) -> Tuple[float, str]:
    """``(unix_seconds, iso8601_utc)`` for ``at`` (default: now)."""
    unix = time.time() if at is None else float(at)
    iso = (
        datetime.fromtimestamp(unix, tz=timezone.utc)
        .isoformat()
        .replace("+00:00", "Z")
    )
    return unix, iso


def environment_fingerprint() -> Dict[str, object]:
    """Where a record was measured: interpreter, platform, CPU budget.

    Everything here is cheap to collect and stable within one boot of one
    machine; it exists so histories mixing machines can be split apart.
    """
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "numpy": numpy.__version__,
    }


@dataclass(frozen=True)
class BenchRecord:
    """One scenario execution, ready for the history store."""

    scenario_id: str
    tier: str
    params: Mapping[str, object]
    repeats: int
    wall_s: Tuple[float, ...]
    cpu_s: Tuple[float, ...]
    metrics: Mapping[str, MetricValue]
    environment: Mapping[str, object]
    library_version: str
    timestamp_unix: float
    timestamp_utc: str
    profile: Optional[Tuple[Mapping[str, object], ...]] = None

    def __post_init__(self) -> None:
        if not self.scenario_id:
            raise PerfWatchError("record needs a scenario_id")
        if self.repeats < 1:
            raise PerfWatchError(f"repeats must be >= 1, got {self.repeats}")
        if len(self.wall_s) != self.repeats or len(self.cpu_s) != self.repeats:
            raise PerfWatchError(
                f"{self.scenario_id}: expected {self.repeats} wall/cpu samples, "
                f"got {len(self.wall_s)}/{len(self.cpu_s)}"
            )

    @property
    def wall_best_s(self) -> float:
        """Best-of-repeats wall time — the timing baseline statistic."""
        return min(self.wall_s)

    @property
    def cpu_best_s(self) -> float:
        """Best-of-repeats CPU time."""
        return min(self.cpu_s)

    def baseline_metrics(self) -> Dict[str, Tuple[float, str]]:
        """``{metric: (value, direction)}`` the classifier compares.

        Wall time is always present (``wall_s``, best-of-repeats, lower is
        better); declared derived metrics follow in name order.
        """
        out: Dict[str, Tuple[float, str]] = {
            "wall_s": (self.wall_best_s, LOWER_IS_BETTER)
        }
        for name in sorted(self.metrics):
            mv = self.metrics[name]
            out[name] = (mv.value, mv.direction)
        return out


def record_to_dict(record: BenchRecord) -> Dict[str, object]:
    """JSON-compatible dict form (the canonical serialization input)."""
    out: Dict[str, object] = {
        "perfwatch_version": PERFWATCH_VERSION,
        "scenario": record.scenario_id,
        "tier": record.tier,
        "params": dict(record.params),
        "repeats": record.repeats,
        "wall_s": list(record.wall_s),
        "cpu_s": list(record.cpu_s),
        "metrics": {
            name: {"value": mv.value, "unit": mv.unit, "direction": mv.direction}
            for name, mv in record.metrics.items()
        },
        "environment": dict(record.environment),
        "library_version": record.library_version,
        "timestamp_unix": record.timestamp_unix,
        "timestamp_utc": record.timestamp_utc,
    }
    if record.profile is not None:
        out["profile"] = [dict(row) for row in record.profile]
    return out


def record_from_dict(data: Mapping[str, object]) -> BenchRecord:
    """Rebuild a record serialized by :func:`record_to_dict`."""
    version = data.get("perfwatch_version")
    if version != PERFWATCH_VERSION:
        raise PerfWatchError(
            f"perfwatch record version {version!r} not supported "
            f"(this build reads version {PERFWATCH_VERSION})"
        )
    try:
        metrics = {
            name: MetricValue(
                value=float(mv["value"]),
                unit=str(mv.get("unit", "")),
                direction=str(mv.get("direction", LOWER_IS_BETTER)),
            )
            for name, mv in dict(data["metrics"]).items()
        }
        profile = data.get("profile")
        return BenchRecord(
            scenario_id=str(data["scenario"]),
            tier=str(data["tier"]),
            params=dict(data["params"]),
            repeats=int(data["repeats"]),
            wall_s=tuple(float(v) for v in data["wall_s"]),
            cpu_s=tuple(float(v) for v in data["cpu_s"]),
            metrics=metrics,
            environment=dict(data["environment"]),
            library_version=str(data["library_version"]),
            timestamp_unix=float(data["timestamp_unix"]),
            timestamp_utc=str(data["timestamp_utc"]),
            profile=tuple(dict(row) for row in profile) if profile else None,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise PerfWatchError(f"malformed perf-watch record: {exc}") from exc


def canonical_json(data: object) -> str:
    """Deterministic JSON: sorted keys, compact separators, finite floats."""
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def record_key(record: BenchRecord) -> str:
    """SHA-256 content address of a record's canonical JSON."""
    payload = canonical_json(record_to_dict(record)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()
