"""Terminal and JSON views of the perf-watch history.

``tgi bench report`` renders one row per (scenario, metric): the baseline
size and bootstrap interval, the latest value, the relative delta, and the
verdict.  The machine-readable form (:func:`report_to_dict`) carries the
same content for CI and tooling — the CLI prints it on stdout with
``--json`` while status stays on stderr, matching the repo's output
contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.tables import render_table
from ..exceptions import PerfWatchError
from .baseline import (
    DEFAULT_CONFIDENCE,
    DEFAULT_MIN_EFFECT,
    DEFAULT_RESAMPLES,
    DEFAULT_WINDOW,
    MetricVerdict,
    Verdict,
    classify_record,
    overall_verdict,
)
from .schema import PERFWATCH_VERSION, BenchRecord, record_key
from .store import HistoryStore

__all__ = [
    "ScenarioReport",
    "build_report",
    "render_report",
    "render_compare",
    "render_trajectory",
    "report_to_dict",
]


@dataclass(frozen=True)
class ScenarioReport:
    """One scenario's latest record judged against its history."""

    scenario_id: str
    latest: BenchRecord
    latest_key: str
    history_n: int
    metric_verdicts: Sequence[MetricVerdict]
    verdict: Verdict


def build_report(
    store: HistoryStore,
    *,
    scenario_ids: Optional[Sequence[str]] = None,
    window: int = DEFAULT_WINDOW,
    confidence: float = DEFAULT_CONFIDENCE,
    resamples: int = DEFAULT_RESAMPLES,
    min_effect: float = DEFAULT_MIN_EFFECT,
) -> List[ScenarioReport]:
    """Judge each scenario's newest record against the records before it."""
    ids = list(scenario_ids) if scenario_ids else store.scenario_ids()
    reports: List[ScenarioReport] = []
    for scenario_id in ids:
        records = store.records(scenario_id)
        if not records:
            raise PerfWatchError(f"no history for scenario {scenario_id!r}")
        latest = records[-1]
        verdicts = classify_record(
            records[:-1],
            latest,
            window=window,
            confidence=confidence,
            resamples=resamples,
            min_effect=min_effect,
        )
        reports.append(
            ScenarioReport(
                scenario_id=scenario_id,
                latest=latest,
                latest_key=record_key(latest),
                history_n=len(records) - 1,
                metric_verdicts=verdicts,
                verdict=overall_verdict(verdicts),
            )
        )
    return reports


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    magnitude = abs(value)
    if magnitude >= 1000:
        return f"{value:,.0f}"
    if magnitude >= 1:
        return f"{value:.3f}"
    if magnitude >= 1e-3 or magnitude == 0:
        return f"{value:.4f}"
    return f"{value:.3e}"


def _fmt_delta(delta: Optional[float]) -> str:
    if delta is None:
        return "-"
    return f"{100 * delta:+.1f}%"


def render_report(reports: Sequence[ScenarioReport]) -> str:
    """The terminal trend report: one table row per scenario metric."""
    if not reports:
        return "perf-watch: no history yet (run `tgi bench run` first)"
    rows = []
    for report in reports:
        for mv in report.metric_verdicts:
            unit = ""
            if mv.metric in report.latest.metrics:
                unit = report.latest.metrics[mv.metric].unit
            elif mv.metric == "wall_s":
                unit = "s"
            label = f"{mv.metric} [{unit}]" if unit else mv.metric
            interval = (
                f"[{_fmt(mv.ci_low)}, {_fmt(mv.ci_high)}]"
                if mv.ci_low is not None
                else "-"
            )
            rows.append(
                [
                    report.scenario_id,
                    label,
                    mv.direction,
                    mv.baseline_n,
                    _fmt(mv.baseline_mean),
                    interval,
                    _fmt(mv.new_value),
                    _fmt_delta(mv.delta_fraction),
                    str(mv.verdict),
                ]
            )
    counts: Dict[Verdict, int] = {}
    for report in reports:
        counts[report.verdict] = counts.get(report.verdict, 0) + 1
    summary = ", ".join(
        f"{counts[v]} {v.value}" for v in Verdict if v in counts
    )
    table = render_table(
        [
            "scenario",
            "metric",
            "better",
            "n",
            "baseline",
            "95% CI",
            "latest",
            "delta",
            "verdict",
        ],
        rows,
        title=f"perf-watch report: {len(reports)} scenarios ({summary})",
        align_right_from=3,
    )
    return table


def render_trajectory(
    records: Sequence[BenchRecord], metric: str = "wall_s"
) -> str:
    """One scenario's metric across its whole history, oldest first."""
    if not records:
        raise PerfWatchError("render_trajectory needs at least one record")
    scenario_id = records[0].scenario_id
    rows = []
    for record in records:
        values = record.baseline_metrics()
        if metric not in values:
            continue
        rows.append(
            [
                record.timestamp_utc,
                record.library_version,
                record.repeats,
                _fmt(values[metric][0]),
            ]
        )
    if not rows:
        raise PerfWatchError(
            f"scenario {scenario_id!r} never measured metric {metric!r}"
        )
    return render_table(
        ["timestamp (UTC)", "version", "repeats", metric],
        rows,
        title=f"{scenario_id}: {metric} trajectory ({len(rows)} runs)",
        align_right_from=2,
    )


def render_compare(base: BenchRecord, new: BenchRecord) -> str:
    """Per-metric deltas between two records of the same scenario."""
    if base.scenario_id != new.scenario_id:
        raise PerfWatchError(
            f"cannot compare records of different scenarios "
            f"({base.scenario_id!r} vs {new.scenario_id!r})"
        )
    base_metrics = base.baseline_metrics()
    new_metrics = new.baseline_metrics()
    rows = []
    for name in sorted(set(base_metrics) | set(new_metrics)):
        b = base_metrics.get(name)
        n = new_metrics.get(name)
        delta = None
        if b is not None and n is not None and b[0] != 0:
            delta = (n[0] - b[0]) / abs(b[0])
        rows.append(
            [
                name,
                _fmt(b[0]) if b else "-",
                _fmt(n[0]) if n else "-",
                _fmt_delta(delta),
                (b or n)[1],
            ]
        )
    return render_table(
        ["metric", base.timestamp_utc, new.timestamp_utc, "delta", "better"],
        rows,
        title=f"{base.scenario_id}: {base.timestamp_utc} -> {new.timestamp_utc}",
        align_right_from=1,
    )


def report_to_dict(reports: Sequence[ScenarioReport]) -> Dict[str, object]:
    """Machine-readable report (the ``tgi bench report --json`` payload)."""
    return {
        "perfwatch_version": PERFWATCH_VERSION,
        "scenarios": [
            {
                "scenario": report.scenario_id,
                "verdict": report.verdict.value,
                "latest_key": report.latest_key,
                "latest_timestamp_utc": report.latest.timestamp_utc,
                "history_n": report.history_n,
                "metrics": [mv.to_dict() for mv in report.metric_verdicts],
            }
            for report in reports
        ],
    }
