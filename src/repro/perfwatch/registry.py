"""The scenario registry: every ``benchmarks/bench_*.py`` measurement, named.

A :class:`BenchScenario` is the perf-watch unit of work — a callable with
declared parameters, repeat count, tier, and derived-metric specs.  Bench
scripts register scenarios at import time with the :func:`scenario`
decorator; :func:`discover` imports every ``bench_*.py`` under a
benchmarks directory so the registry is populated without pytest in the
loop.

Scenario callables come in two shapes:

* ``fn(**params)`` — self-contained;
* ``fn(state, **params)`` with a ``setup`` callable — expensive shared
  state (e.g. the calibrated campaign context) is built once, outside the
  timed region.

Either returns ``None`` or a ``{metric_name: float}`` dict matching the
scenario's declared :class:`~repro.perfwatch.schema.MetricSpec` names
exactly — silent metric drift is an error, not a schema change.

Registration is idempotent per source file: pytest and :func:`discover`
may both import the same script (under different module names) without
tripping a duplicate-id error, but two *different* files claiming one id
is always a bug and raises.
"""

from __future__ import annotations

import importlib.util
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import PerfWatchError
from .schema import MetricSpec

__all__ = [
    "TIERS",
    "BenchScenario",
    "scenario",
    "register",
    "get_scenario",
    "scenarios",
    "clear_registry",
    "default_bench_dir",
    "discover",
]

#: Valid scenario tiers: ``quick`` runs in CI on every push, ``full`` is
#: the long tail executed on demand.
TIERS = ("quick", "full")

_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.\-]*$")


@dataclass(frozen=True)
class BenchScenario:
    """One registered benchmark scenario (see module docstring)."""

    scenario_id: str
    fn: Callable[..., Optional[Mapping[str, float]]]
    description: str = ""
    setup: Optional[Callable[[], object]] = None
    params: Mapping[str, object] = field(default_factory=dict)
    tier: str = "quick"
    repeats: int = 3
    metrics: Tuple[MetricSpec, ...] = ()
    source: str = ""

    def __post_init__(self) -> None:
        if not _ID_PATTERN.match(self.scenario_id):
            raise PerfWatchError(
                f"scenario id {self.scenario_id!r} must match {_ID_PATTERN.pattern}"
            )
        if self.tier not in TIERS:
            raise PerfWatchError(
                f"{self.scenario_id}: tier must be one of {TIERS}, got {self.tier!r}"
            )
        if self.repeats < 1:
            raise PerfWatchError(
                f"{self.scenario_id}: repeats must be >= 1, got {self.repeats}"
            )
        if not callable(self.fn):
            raise PerfWatchError(f"{self.scenario_id}: fn must be callable")
        names = [m.name for m in self.metrics]
        if len(names) != len(set(names)):
            raise PerfWatchError(f"{self.scenario_id}: duplicate metric names")
        if "wall_s" in names:
            raise PerfWatchError(
                f"{self.scenario_id}: 'wall_s' is reserved (recorded automatically)"
            )

    def metric_names(self) -> Tuple[str, ...]:
        return tuple(m.name for m in self.metrics)


# The process-wide registry ------------------------------------------------

_REGISTRY: Dict[str, BenchScenario] = {}


def register(scn: BenchScenario) -> BenchScenario:
    """Add a scenario to the registry.

    Re-registering the same id from the same source file replaces the
    entry (double imports are routine: pytest and discovery load bench
    scripts under different module names).  The same id from a different
    file raises.
    """
    existing = _REGISTRY.get(scn.scenario_id)
    if existing is not None and existing.source != scn.source:
        raise PerfWatchError(
            f"scenario id {scn.scenario_id!r} already registered by "
            f"{existing.source or '<unknown>'}"
        )
    _REGISTRY[scn.scenario_id] = scn
    return scn


def scenario(
    scenario_id: str,
    *,
    description: str = "",
    setup: Optional[Callable[[], object]] = None,
    params: Optional[Mapping[str, object]] = None,
    tier: str = "quick",
    repeats: int = 3,
    metrics: Sequence[MetricSpec] = (),
):
    """Decorator: register the function as a :class:`BenchScenario`."""

    def decorate(fn):
        source = getattr(fn, "__module__", "") or ""
        module = sys.modules.get(source)
        if module is not None:
            source = getattr(module, "__file__", source) or source
        register(
            BenchScenario(
                scenario_id=scenario_id,
                fn=fn,
                description=description or (fn.__doc__ or "").strip().split("\n")[0],
                setup=setup,
                params=dict(params or {}),
                tier=tier,
                repeats=repeats,
                metrics=tuple(metrics),
                source=str(Path(source).resolve()) if source else "",
            )
        )
        return fn

    return decorate


def get_scenario(scenario_id: str) -> BenchScenario:
    """Look up one scenario; unknown ids list what *is* registered."""
    try:
        return _REGISTRY[scenario_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise PerfWatchError(
            f"unknown scenario {scenario_id!r}; registered: {known}"
        ) from None


def scenarios(tier: Optional[str] = None) -> List[BenchScenario]:
    """Registered scenarios in id order, optionally filtered by tier."""
    if tier is not None and tier not in TIERS:
        raise PerfWatchError(f"tier must be one of {TIERS}, got {tier!r}")
    out = [_REGISTRY[key] for key in sorted(_REGISTRY)]
    if tier is not None:
        out = [s for s in out if s.tier == tier]
    return out


def clear_registry() -> None:
    """Empty the registry (test isolation)."""
    _REGISTRY.clear()


# Discovery ----------------------------------------------------------------

def default_bench_dir() -> Path:
    """Find the ``benchmarks/`` script directory.

    Prefers ``./benchmarks`` (running from a checkout), falling back to
    the directory next to the installed package's repository root (the
    editable-install layout ``<root>/src/repro`` ⇒ ``<root>/benchmarks``).
    """
    cwd_dir = Path.cwd() / "benchmarks"
    if cwd_dir.is_dir():
        return cwd_dir
    pkg_root = Path(__file__).resolve().parents[3] / "benchmarks"
    if pkg_root.is_dir():
        return pkg_root
    raise PerfWatchError(
        "no benchmarks/ directory found; pass --bench-dir explicitly"
    )


def discover(
    bench_dir: Optional[Path] = None,
) -> Tuple[List[BenchScenario], List[Tuple[str, str]]]:
    """Import every ``bench_*.py`` in ``bench_dir``, collecting scenarios.

    Returns ``(scenarios, errors)`` where ``errors`` is a list of
    ``(file_name, message)`` for scripts that failed to import — one
    broken script must not take the whole registry down.
    """
    directory = Path(bench_dir) if bench_dir is not None else default_bench_dir()
    if not directory.is_dir():
        raise PerfWatchError(f"bench dir {directory} does not exist")
    errors: List[Tuple[str, str]] = []
    for file in sorted(directory.glob("bench_*.py")):
        module_name = f"repro_perfwatch_bench.{file.stem}"
        if module_name in sys.modules:
            continue
        spec = importlib.util.spec_from_file_location(module_name, file)
        if spec is None or spec.loader is None:
            errors.append((file.name, "could not build an import spec"))
            continue
        module = importlib.util.module_from_spec(spec)
        sys.modules[module_name] = module
        try:
            spec.loader.exec_module(module)
        except Exception as exc:  # noqa: BLE001 - surfaced to the caller
            del sys.modules[module_name]
            errors.append((file.name, f"{type(exc).__name__}: {exc}"))
    return scenarios(), errors
