"""Process-wide shared state for scenario setup.

The figure/table scenarios all regenerate artifacts from the same
calibrated campaign (reference run + Fire sweep).  Building it is cheap
but not free, and building it once per scenario would distort the very
timings perf-watch records — so scenarios (and the pytest ``context``
fixture in ``benchmarks/conftest.py``) share one fully-materialized
:class:`~repro.experiments.SharedContext` per process.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["shared_context", "reset_shared_context"]

_CONTEXT = None


def shared_context():
    """The process-wide calibrated campaign context, built on first use."""
    global _CONTEXT
    if _CONTEXT is None:
        from ..experiments import PAPER_CONFIG, SharedContext

        context = SharedContext(PAPER_CONFIG)
        _ = context.reference  # materialize both halves up front so the
        _ = context.sweep  # first timed scenario does not pay for them
        _CONTEXT = context
    return _CONTEXT


def reset_shared_context() -> None:
    """Drop the cached context (test isolation)."""
    global _CONTEXT
    _CONTEXT = None
