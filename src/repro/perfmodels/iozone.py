"""IOzone sequential-write performance model.

The paper runs only IOzone's write test, one instance per node, and reports
MB/s.  A write benchmark's measured rate blends two regimes:

* while the file still fits in free page cache, writes complete at memory
  speed (the *absorption window*);
* once the cache is saturated (or when the run ends with a mandated flush),
  writes proceed at the device's sustained sequential rate.

The model exposes the cache window via ``cache_window_bytes`` (default: a
quarter of node DRAM, a typical dirty-page ceiling) and applies a fixed
filesystem efficiency to the device rate.  For the file sizes the
experiments use (several x DRAM) the device rate dominates, as it must for
an I/O benchmark to be meaningful — but the window is modelled so tests can
demonstrate the classic "IOzone lies for small files" artifact.

Aggregate performance over ``k`` nodes is ``k`` times the per-node rate
(node-local disks; no shared filesystem contention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cluster.cluster import ClusterSpec
from ..exceptions import BenchmarkError
from ..validation import check_fraction, check_positive, check_positive_int

__all__ = ["IOzoneModel", "IOzonePrediction"]


@dataclass(frozen=True)
class IOzonePrediction:
    """Predicted timing and rate of one IOzone write run."""

    num_nodes: int
    file_bytes: float
    time_s: float
    per_node_bandwidth: float  # measured bytes/s on each node
    aggregate_bandwidth: float  # summed over nodes


@dataclass(frozen=True)
class IOzoneModel:
    """IOzone write-test predictor for one cluster.

    Parameters
    ----------
    cluster:
        The machine.
    filesystem_efficiency:
        Fraction of the device's sequential rate the filesystem sustains
        (journaling, metadata, and allocation overhead).
    cache_window_bytes:
        Bytes absorbed at memory speed before the device rate applies;
        ``None`` selects a quarter of node DRAM.
    cache_bandwidth:
        Apparent bytes/s while writes land in the page cache.
    """

    cluster: ClusterSpec
    filesystem_efficiency: float = 0.92
    cache_window_bytes: Optional[float] = None
    cache_bandwidth: float = 2.0e9

    def __post_init__(self) -> None:
        check_fraction(self.filesystem_efficiency, "filesystem_efficiency", exc=BenchmarkError)
        if self.filesystem_efficiency == 0:
            raise BenchmarkError("filesystem_efficiency must be > 0")
        if self.cache_window_bytes is not None:
            check_positive(self.cache_window_bytes, "cache_window_bytes", exc=BenchmarkError)
        check_positive(self.cache_bandwidth, "cache_bandwidth", exc=BenchmarkError)

    def effective_cache_window(self) -> float:
        """The absorption window in bytes."""
        if self.cache_window_bytes is not None:
            return self.cache_window_bytes
        return 0.25 * self.cluster.node.memory_bytes

    def device_rate(self) -> float:
        """Sustained filesystem write bytes/s of one node."""
        return self.cluster.node.storage.seq_write_bandwidth * self.filesystem_efficiency

    def predict(self, num_nodes: int, *, file_bytes: float) -> IOzonePrediction:
        """Predict a write of ``file_bytes`` per node on ``num_nodes`` nodes."""
        check_positive_int(num_nodes, "num_nodes", exc=BenchmarkError)
        if num_nodes > self.cluster.num_nodes:
            raise BenchmarkError(
                f"{num_nodes} nodes exceed cluster size {self.cluster.num_nodes}"
            )
        check_positive(file_bytes, "file_bytes", exc=BenchmarkError)
        window = min(self.effective_cache_window(), file_bytes)
        device_bytes = file_bytes - window
        time_s = window / self.cache_bandwidth + device_bytes / self.device_rate()
        # The blended rate is mathematically within [device_rate, cache_bandwidth],
        # but the float division can land a few ulps above the cache ceiling
        # (e.g. when the file barely exceeds the absorption window); clamp so the
        # model honours its own bound exactly.
        per_node = min(file_bytes / time_s, self.cache_bandwidth)
        return IOzonePrediction(
            num_nodes=num_nodes,
            file_bytes=file_bytes,
            time_s=time_s,
            per_node_bandwidth=per_node,
            aggregate_bandwidth=per_node * num_nodes,
        )

    def file_size_for_time(self, target_seconds: float, *, num_nodes: int = 1) -> float:
        """Per-node file size whose predicted runtime is ~``target_seconds``."""
        check_positive(target_seconds, "target_seconds", exc=BenchmarkError)
        window = self.effective_cache_window()
        window_time = window / self.cache_bandwidth
        if target_seconds <= window_time:
            return max(1.0, target_seconds * self.cache_bandwidth)
        return window + (target_seconds - window_time) * self.device_rate()
