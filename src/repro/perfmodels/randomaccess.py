"""HPCC RandomAccess (GUPS) performance model — suite extension.

The paper motivates TGI via the HPC Challenge suite; RandomAccess is
HPCC's memory-*latency* probe, complementing STREAM's bandwidth probe.
The benchmark hammers a table spanning most of memory with random 8-byte
read-modify-writes and reports **GUPS** (giga-updates per second).

Per-core update rate is latency-bound with limited memory-level
parallelism::

    rate_core = mlp / access_latency

saturating per socket once outstanding misses exhaust the memory
controller's queues (modelled, like STREAM, with a cores-to-saturate knob —
random access saturates with fewer cores than streaming).  The multi-node
(MPI) variant must route most updates across the network in bucket
exchanges, so the global rate is the *minimum* of the aggregate memory
rate and the aggregate network rate::

    rate_net = p * nic_bandwidth / (bytes_per_update * (p-1)/p)

with ~2x8 bytes moved per remote update (index + value, HPCC's bucketed
alltoall).  On GigE the network bound dominates quickly — the classic
cliff between single-node and multi-node GUPS numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cluster.cluster import ClusterSpec
from ..exceptions import BenchmarkError
from ..validation import check_positive, check_positive_int

__all__ = ["RandomAccessModel", "RandomAccessPrediction"]

#: Bytes crossing the network per remote update (bucketed index+value).
_BYTES_PER_REMOTE_UPDATE = 16.0


@dataclass(frozen=True)
class RandomAccessPrediction:
    """Predicted timing and update rate of one RandomAccess run."""

    num_ranks: int
    updates: float
    time_s: float
    updates_per_second: float
    memory_bound_rate: float
    network_bound_rate: float

    @property
    def gups(self) -> float:
        """Giga-updates per second."""
        return self.updates_per_second / 1e9

    @property
    def network_limited(self) -> bool:
        """Whether the interconnect, not DRAM latency, set the rate."""
        return self.network_bound_rate < self.memory_bound_rate


@dataclass(frozen=True)
class RandomAccessModel:
    """GUPS predictor for one cluster.

    Parameters
    ----------
    cluster:
        The machine.
    memory_level_parallelism:
        Outstanding misses a single core sustains (era-typical 4-8).
    cores_to_saturate:
        Cores per socket that exhaust the controller's miss queues.
    """

    cluster: ClusterSpec
    memory_level_parallelism: float = 6.0
    cores_to_saturate: int = 3

    def __post_init__(self) -> None:
        check_positive(
            self.memory_level_parallelism, "memory_level_parallelism", exc=BenchmarkError
        )
        check_positive_int(self.cores_to_saturate, "cores_to_saturate", exc=BenchmarkError)

    def per_core_rate(self) -> float:
        """Updates/s a single core sustains against local DRAM."""
        return self.memory_level_parallelism / self.cluster.node.memory.access_latency_s

    def node_memory_rate(self, ranks_on_node: int) -> float:
        """Updates/s one node sustains with ``ranks_on_node`` ranks."""
        check_positive_int(ranks_on_node, "ranks_on_node", exc=BenchmarkError)
        node = self.cluster.node
        if ranks_on_node > node.cores:
            raise BenchmarkError(
                f"{ranks_on_node} ranks exceed {node.cores} cores per node"
            )
        per_core = self.per_core_rate()
        socket_cap = self.cores_to_saturate * per_core
        base, extra = divmod(ranks_on_node, node.sockets)
        total = 0.0
        for socket in range(node.sockets):
            on_socket = base + (1 if socket < extra else 0)
            total += min(on_socket * per_core, socket_cap)
        return total

    def network_rate(self, num_ranks: int, nodes_used: int) -> float:
        """Updates/s the fabric admits for the bucketed exchange."""
        if nodes_used <= 1:
            return math.inf
        remote_fraction = (nodes_used - 1) / nodes_used
        per_node = self.cluster.node.nic.bandwidth / (
            _BYTES_PER_REMOTE_UPDATE * remote_fraction
        )
        return nodes_used * per_node

    def predict(
        self, num_ranks: int, *, updates_per_rank: float = 4e9, ranks_per_node: int = 0
    ) -> RandomAccessPrediction:
        """Predict a run of ``updates_per_rank`` updates per rank."""
        check_positive_int(num_ranks, "num_ranks", exc=BenchmarkError)
        check_positive(updates_per_rank, "updates_per_rank", exc=BenchmarkError)
        if num_ranks > self.cluster.total_cores:
            raise BenchmarkError(
                f"{num_ranks} ranks exceed cluster capacity {self.cluster.total_cores}"
            )
        k = ranks_per_node or math.ceil(num_ranks / self.cluster.num_nodes)
        k = min(k, num_ranks)
        nodes_used = math.ceil(num_ranks / k)
        mem_rate = nodes_used * self.node_memory_rate(k)
        net_rate = self.network_rate(num_ranks, nodes_used)
        rate = min(mem_rate, net_rate)
        updates = updates_per_rank * num_ranks
        return RandomAccessPrediction(
            num_ranks=num_ranks,
            updates=updates,
            time_s=updates / rate,
            updates_per_second=rate,
            memory_bound_rate=mem_rate,
            network_bound_rate=net_rate,
        )

    def updates_for_time(
        self, target_seconds: float, num_ranks: int, *, ranks_per_node: int = 0
    ) -> float:
        """Per-rank update count whose predicted runtime is ~target."""
        check_positive(target_seconds, "target_seconds", exc=BenchmarkError)
        one = self.predict(num_ranks, updates_per_rank=1.0, ranks_per_node=ranks_per_node)
        return max(1.0, target_seconds / one.time_s)
