"""Classic parallel scaling laws.

Used by the analysis layer to characterize the energy-efficiency curves and
by property-based tests as independent oracles for the simulator's scaling
behaviour.
"""

from __future__ import annotations

from ..exceptions import MetricError
from ..validation import check_fraction, check_positive, check_positive_int

__all__ = [
    "amdahl_speedup",
    "gustafson_speedup",
    "karp_flatt_serial_fraction",
    "parallel_efficiency",
]


def amdahl_speedup(serial_fraction: float, num_processors: int) -> float:
    """Amdahl's law: ``1 / (s + (1 - s) / p)``."""
    check_fraction(serial_fraction, "serial_fraction", exc=MetricError)
    check_positive_int(num_processors, "num_processors", exc=MetricError)
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / num_processors)


def gustafson_speedup(serial_fraction: float, num_processors: int) -> float:
    """Gustafson's law: ``p + s * (1 - p)`` (scaled speedup)."""
    check_fraction(serial_fraction, "serial_fraction", exc=MetricError)
    check_positive_int(num_processors, "num_processors", exc=MetricError)
    return num_processors + serial_fraction * (1 - num_processors)


def karp_flatt_serial_fraction(speedup: float, num_processors: int) -> float:
    """Karp-Flatt metric: experimentally determined serial fraction.

    ``e = (1/S - 1/p) / (1 - 1/p)``.  Requires ``p >= 2``.
    """
    check_positive(speedup, "speedup", exc=MetricError)
    check_positive_int(num_processors, "num_processors", exc=MetricError)
    if num_processors < 2:
        raise MetricError("Karp-Flatt needs at least 2 processors")
    p = num_processors
    return (1.0 / speedup - 1.0 / p) / (1.0 - 1.0 / p)


def parallel_efficiency(speedup: float, num_processors: int) -> float:
    """``S / p`` — fraction of ideal speedup achieved."""
    check_positive(speedup, "speedup", exc=MetricError)
    check_positive_int(num_processors, "num_processors", exc=MetricError)
    return speedup / num_processors
