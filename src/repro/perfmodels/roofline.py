"""Roofline model utilities.

The roofline model bounds a kernel's attainable FLOP rate by
``min(peak_flops, arithmetic_intensity * memory_bandwidth)``.  It is used in
the library to sanity-check the benchmark models (HPL sits far right of the
ridge; STREAM Triad far left) and in examples that explain *why* the two
benchmarks stress different components.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.node import NodeSpec
from ..exceptions import MetricError
from ..validation import check_non_negative, check_positive

__all__ = ["arithmetic_intensity", "RooflineModel"]


def arithmetic_intensity(flops: float, bytes_moved: float) -> float:
    """FLOPs per byte of DRAM traffic."""
    check_non_negative(flops, "flops", exc=MetricError)
    check_positive(bytes_moved, "bytes_moved", exc=MetricError)
    return flops / bytes_moved


@dataclass(frozen=True)
class RooflineModel:
    """Roofline for one node (CPU peak vs. sustained DRAM bandwidth)."""

    node: NodeSpec

    @property
    def peak_flops(self) -> float:
        """The flat roof in FLOP/s."""
        return self.node.peak_flops

    @property
    def memory_bandwidth(self) -> float:
        """The slanted roof's slope in bytes/s."""
        return self.node.sustained_memory_bandwidth

    @property
    def ridge_point(self) -> float:
        """Arithmetic intensity (flops/byte) where the roofs meet."""
        return self.peak_flops / self.memory_bandwidth

    def attainable_flops(self, intensity: float) -> float:
        """``min(peak, intensity * bandwidth)``."""
        check_non_negative(intensity, "intensity", exc=MetricError)
        return min(self.peak_flops, intensity * self.memory_bandwidth)

    def is_memory_bound(self, intensity: float) -> bool:
        """Whether a kernel of this intensity is left of the ridge."""
        check_non_negative(intensity, "intensity", exc=MetricError)
        return intensity < self.ridge_point
