"""STREAM Triad performance model.

STREAM's Triad kernel (``c = alpha * a + b``) streams three arrays through
DRAM; its sustained rate per socket is capped at the socket's
STREAM-sustainable bandwidth and is reached once
:attr:`~repro.cluster.memory.MemorySpec.cores_to_saturate` cores stream
concurrently.  Below saturation a single core's rate is
``socket_sustained / cores_to_saturate``.

Ranks are assumed spread evenly over a node's sockets (the usual
``--bind-to socket`` round robin), so a node with ``k`` ranks sustains::

    sum over sockets of min(ranks_on_socket * per_core_rate, socket_sustained)

The benchmark's reported number is the aggregate MB/s across all ranks —
this is how multi-node STREAM sweeps are conventionally summed, and it makes
the memory benchmark's performance scale with machine size like HPL's does,
which the TGI normalization (REE) relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cluster.cluster import ClusterSpec
from ..exceptions import BenchmarkError
from ..validation import check_positive, check_positive_int

__all__ = ["StreamModel", "StreamPrediction"]

#: Triad traffic per element per iteration: read a, read b, write c.
#: (STREAM's official accounting ignores the write-allocate fill.)
_TRIAD_BYTES_PER_ELEMENT = 3 * 8


@dataclass(frozen=True)
class StreamPrediction:
    """Predicted timing and bandwidth of one STREAM run."""

    num_ranks: int
    array_elements: int
    iterations: int
    time_s: float
    aggregate_bandwidth: float  # bytes/s summed over ranks

    @property
    def per_rank_bandwidth(self) -> float:
        """Mean bytes/s each rank sustains."""
        return self.aggregate_bandwidth / self.num_ranks


@dataclass(frozen=True)
class StreamModel:
    """STREAM Triad predictor for one cluster."""

    cluster: ClusterSpec

    def per_core_bandwidth(self) -> float:
        """Bytes/s a single streaming core sustains."""
        mem = self.cluster.node.memory
        return mem.sustained_bandwidth / mem.cores_to_saturate

    def node_bandwidth(self, ranks_on_node: int) -> float:
        """Sustained Triad bytes/s of one node running ``ranks_on_node`` ranks."""
        check_positive_int(ranks_on_node, "ranks_on_node", exc=BenchmarkError)
        node = self.cluster.node
        if ranks_on_node > node.cores:
            raise BenchmarkError(
                f"{ranks_on_node} ranks exceed {node.cores} cores per node"
            )
        mem = node.memory
        per_core = self.per_core_bandwidth()
        base, extra = divmod(ranks_on_node, node.sockets)
        total = 0.0
        for socket in range(node.sockets):
            on_socket = base + (1 if socket < extra else 0)
            total += min(on_socket * per_core, mem.sustained_bandwidth)
        return total

    def predict(
        self,
        num_ranks: int,
        *,
        array_elements: int = 20_000_000,
        iterations: int = 100,
        ranks_per_node: int = 0,
    ) -> StreamPrediction:
        """Predict a run of ``iterations`` Triad sweeps per rank.

        ``array_elements`` is the per-rank array length (the STREAM rule of
        "much larger than last-level cache" is the caller's responsibility —
        the model assumes DRAM-resident arrays).  ``ranks_per_node`` defaults
        to the breadth-first value.
        """
        check_positive_int(num_ranks, "num_ranks", exc=BenchmarkError)
        check_positive_int(array_elements, "array_elements", exc=BenchmarkError)
        check_positive_int(iterations, "iterations", exc=BenchmarkError)
        if num_ranks > self.cluster.total_cores:
            raise BenchmarkError(
                f"{num_ranks} ranks exceed cluster capacity {self.cluster.total_cores}"
            )
        k = ranks_per_node or math.ceil(num_ranks / self.cluster.num_nodes)
        k = min(k, num_ranks)
        node_bw = self.node_bandwidth(k)
        per_rank_bw = node_bw / k
        bytes_per_rank = iterations * array_elements * _TRIAD_BYTES_PER_ELEMENT
        time_s = bytes_per_rank / per_rank_bw
        return StreamPrediction(
            num_ranks=num_ranks,
            array_elements=array_elements,
            iterations=iterations,
            time_s=time_s,
            aggregate_bandwidth=per_rank_bw * num_ranks,
        )

    def iterations_for_time(
        self, target_seconds: float, num_ranks: int, *, array_elements: int = 20_000_000,
        ranks_per_node: int = 0,
    ) -> int:
        """Iteration count whose predicted runtime is ~``target_seconds``."""
        check_positive(target_seconds, "target_seconds", exc=BenchmarkError)
        one = self.predict(
            num_ranks,
            array_elements=array_elements,
            iterations=1,
            ranks_per_node=ranks_per_node,
        )
        return max(1, round(target_seconds / one.time_s))
