"""HPL (High-Performance LINPACK) performance model.

HPL solves a dense ``N x N`` system by blocked LU factorization with row
partial pivoting on a 2-D block-cyclic process grid.  The model predicts
run time as the sum of three terms:

* **compute** — ``(2/3 N^3 + 2 N^2)`` flops at per-core peak times a DGEMM
  kernel efficiency, degraded by a *packing contention* factor when many
  ranks share a node (shared caches, NUMA links, and memory channels slow
  the update kernel as the node fills up);
* **communication volume** — panel and update broadcasts move
  ``O(N^2 log p / sqrt(p))`` bytes through each process's link (Hockney beta
  term), with a tunable prefactor;
* **communication latency** — ``(N / nb)`` factorization steps each pay
  ``O(log p)`` message latencies (alpha term).

With ``N`` fixed while ``p`` grows (strong scaling, the configuration of the
paper's Figure 2 sweep) the communication terms flatten the speedup and the
packing contention bends it down, producing the characteristic rise /
plateau / rolloff of HPL's energy-efficiency curve.  With ``N`` sized from
memory (the "capability run" configuration) compute dominates and the model
reports the machine's headline GFLOPS.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cluster.cluster import ClusterSpec
from ..exceptions import BenchmarkError
from ..validation import check_fraction, check_positive, check_positive_int

__all__ = ["HPLModel", "HPLPrediction"]

#: Bytes per double-precision matrix element.
_BYTES_PER_ELEMENT = 8


@dataclass(frozen=True)
class HPLPrediction:
    """Predicted timing and performance of one HPL run."""

    problem_size: int
    num_ranks: int
    flops: float
    compute_time_s: float
    comm_volume_time_s: float
    comm_latency_time_s: float

    @property
    def comm_time_s(self) -> float:
        """Total communication seconds."""
        return self.comm_volume_time_s + self.comm_latency_time_s

    @property
    def total_time_s(self) -> float:
        """Wall-clock seconds of the run."""
        return self.compute_time_s + self.comm_time_s

    @property
    def performance_flops(self) -> float:
        """Reported HPL rate in FLOP/s."""
        return self.flops / self.total_time_s

    @property
    def parallel_efficiency(self) -> float:
        """Fraction of time spent computing."""
        return self.compute_time_s / self.total_time_s


@dataclass(frozen=True)
class HPLModel:
    """HPL time/performance predictor for one cluster.

    Parameters
    ----------
    cluster:
        The machine.
    dgemm_efficiency:
        Fraction of per-core peak the update kernel sustains with the node
        otherwise quiet.
    block_size:
        HPL blocking factor ``NB``.
    comm_volume_factor:
        Prefactor on the broadcast-volume term (absorbs algorithmic
        constants: U broadcasts, row swaps, pivoting traffic).
    contention_threshold:
        Ranks per node beyond which packing contention sets in (typically
        the per-socket core count: one memory domain per rank is free).
    contention_slope:
        Strength of packing contention; the compute kernel slows by
        ``1 + slope * (k - threshold) / cores`` when ``k`` ranks share a
        ``cores``-core node.
    use_accelerators:
        When the node carries accelerators, add their sustained HPL rate
        (CPU+GPU hybrid DGEMM, the Fermi-era HPL-CUDA scheme) to every
        participating node's compute throughput.
    """

    cluster: ClusterSpec
    dgemm_efficiency: float = 0.85
    block_size: int = 224
    comm_volume_factor: float = 1.0
    contention_threshold: int = 8
    contention_slope: float = 1.0
    use_accelerators: bool = True

    def __post_init__(self) -> None:
        check_fraction(self.dgemm_efficiency, "dgemm_efficiency", exc=BenchmarkError)
        if self.dgemm_efficiency == 0:
            raise BenchmarkError("dgemm_efficiency must be > 0")
        check_positive_int(self.block_size, "block_size", exc=BenchmarkError)
        check_positive(self.comm_volume_factor, "comm_volume_factor", exc=BenchmarkError)
        check_positive_int(self.contention_threshold, "contention_threshold", exc=BenchmarkError)
        if self.contention_slope < 0:
            raise BenchmarkError("contention_slope must be >= 0")

    # ------------------------------------------------------------------
    # Problem sizing
    # ------------------------------------------------------------------
    def problem_size_from_memory(self, *, memory_fraction: float = 0.8, nodes: int = 0) -> int:
        """Largest ``N`` whose matrix fills ``memory_fraction`` of DRAM.

        ``nodes=0`` means all nodes.  The result is rounded down to a
        multiple of the block size, as HPL practitioners do.
        """
        check_fraction(memory_fraction, "memory_fraction", exc=BenchmarkError)
        if memory_fraction == 0:
            raise BenchmarkError("memory_fraction must be > 0")
        n_nodes = nodes or self.cluster.num_nodes
        if not 1 <= n_nodes <= self.cluster.num_nodes:
            raise BenchmarkError(f"nodes must be in [1, {self.cluster.num_nodes}]")
        total_bytes = memory_fraction * n_nodes * self.cluster.node.memory_bytes
        n = int(math.sqrt(total_bytes / _BYTES_PER_ELEMENT))
        n -= n % self.block_size
        if n < self.block_size:
            raise BenchmarkError("memory too small for a single block")
        return n

    @staticmethod
    def flop_count(n: int) -> float:
        """Official HPL flop count: ``2/3 n^3 + 2 n^2``."""
        check_positive_int(n, "n", exc=BenchmarkError)
        return (2.0 / 3.0) * n**3 + 2.0 * n**2

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def contention_factor(self, ranks_per_node: int) -> float:
        """Compute-kernel slowdown factor (>= 1) for a node with ``k`` ranks."""
        check_positive_int(ranks_per_node, "ranks_per_node", exc=BenchmarkError)
        cores = self.cluster.node.cores
        if ranks_per_node > cores:
            raise BenchmarkError(f"{ranks_per_node} ranks exceed {cores} cores per node")
        excess = max(0, ranks_per_node - self.contention_threshold)
        return 1.0 + self.contention_slope * excess / cores

    def predict(self, problem_size: int, num_ranks: int, *, ranks_per_node: int = 0) -> HPLPrediction:
        """Predict one run of size ``problem_size`` on ``num_ranks`` ranks.

        ``ranks_per_node`` defaults to the breadth-first value
        ``ceil(num_ranks / num_nodes)``.
        """
        check_positive_int(problem_size, "problem_size", exc=BenchmarkError)
        check_positive_int(num_ranks, "num_ranks", exc=BenchmarkError)
        if num_ranks > self.cluster.total_cores:
            raise BenchmarkError(
                f"{num_ranks} ranks exceed cluster capacity {self.cluster.total_cores}"
            )
        k = ranks_per_node or math.ceil(num_ranks / self.cluster.num_nodes)
        n = problem_size
        flops = self.flop_count(n)
        core_peak = self.cluster.node.cpu.peak_flops_per_core
        slowdown = self.contention_factor(k)
        compute_rate = num_ranks * core_peak * self.dgemm_efficiency / slowdown
        if self.use_accelerators and self.cluster.node.accelerators:
            nodes_used = math.ceil(num_ranks / k)
            acc_rate = sum(
                acc.sustained_hpl_flops for acc in self.cluster.node.accelerators
            )
            compute_rate += nodes_used * acc_rate
        compute = flops / compute_rate

        if num_ranks == 1:
            return HPLPrediction(
                problem_size=n,
                num_ranks=1,
                flops=flops,
                compute_time_s=compute,
                comm_volume_time_s=0.0,
                comm_latency_time_s=0.0,
            )

        nic = self.cluster.node.nic
        log_p = math.log2(num_ranks)
        # Broadcast volume through each rank's link: the column of panels and
        # the row of U updates sum to ~N^2 elements / sqrt(p) per rank, each
        # forwarded ~log p times by tree broadcasts.
        volume_bytes = (
            self.comm_volume_factor
            * _BYTES_PER_ELEMENT
            * n**2
            * log_p
            / math.sqrt(num_ranks)
        )
        comm_volume = volume_bytes / nic.bandwidth
        # Each of the N/nb steps pays O(log p) latencies for panel bcast,
        # pivot exchange, and U bcast (factor 3).
        steps = max(1, n // self.block_size)
        comm_latency = 3.0 * steps * log_p * nic.latency_s
        return HPLPrediction(
            problem_size=n,
            num_ranks=num_ranks,
            flops=flops,
            compute_time_s=compute,
            comm_volume_time_s=comm_volume,
            comm_latency_time_s=comm_latency,
        )

    def problem_size_for_time(
        self, target_seconds: float, num_ranks: int, *, ranks_per_node: int = 0
    ) -> int:
        """``N`` (multiple of NB) whose predicted runtime is ~``target_seconds``.

        Used to keep suite members' runtimes comparable, mirroring how
        benchmarking campaigns size their runs.  Bisects on ``N``.
        """
        check_positive(target_seconds, "target_seconds", exc=BenchmarkError)
        lo, hi = self.block_size, 1
        # exponential search for an upper bound
        hi = self.block_size
        while (
            self.predict(hi, num_ranks, ranks_per_node=ranks_per_node).total_time_s
            < target_seconds
        ):
            hi *= 2
            if hi > 10_000_000:
                raise BenchmarkError("target time unreachably large")
        while hi - lo > self.block_size:
            mid = (lo + hi) // 2
            mid -= mid % self.block_size
            mid = max(mid, self.block_size)
            if mid in (lo, hi):
                break
            t = self.predict(mid, num_ranks, ranks_per_node=ranks_per_node).total_time_s
            if t < target_seconds:
                lo = mid
            else:
                hi = mid
        return max(lo, self.block_size)
