"""Analytic performance models for the benchmark suite.

Each model predicts, for a given cluster and run configuration, the time
breakdown and reported performance of one benchmark:

* :mod:`~repro.perfmodels.hpl` — dense LU (HPL): flop count, DGEMM kernel
  efficiency, block-cyclic communication cost (Hockney), per-node packing
  contention;
* :mod:`~repro.perfmodels.stream` — STREAM Triad: per-core streaming rate
  saturating at the socket's sustained bandwidth;
* :mod:`~repro.perfmodels.iozone` — IOzone sequential write: per-node disk
  rate with a page-cache absorption window;
* :mod:`~repro.perfmodels.amdahl` / :mod:`~repro.perfmodels.roofline` —
  classic scaling-law helpers used by the analysis layer and tests.

The predictions are consumed by :mod:`repro.benchmarks`, which compiles them
into per-rank phase programs for the simulator.
"""

from .hpl import HPLModel, HPLPrediction
from .stream import StreamModel, StreamPrediction
from .iozone import IOzoneModel, IOzonePrediction
from .randomaccess import RandomAccessModel, RandomAccessPrediction
from .network import EffectiveBandwidthModel, EffectiveBandwidthPrediction
from .amdahl import (
    amdahl_speedup,
    gustafson_speedup,
    karp_flatt_serial_fraction,
    parallel_efficiency,
)
from .roofline import RooflineModel, arithmetic_intensity

__all__ = [
    "HPLModel",
    "HPLPrediction",
    "StreamModel",
    "StreamPrediction",
    "IOzoneModel",
    "IOzonePrediction",
    "RandomAccessModel",
    "RandomAccessPrediction",
    "EffectiveBandwidthModel",
    "EffectiveBandwidthPrediction",
    "amdahl_speedup",
    "gustafson_speedup",
    "karp_flatt_serial_fraction",
    "parallel_efficiency",
    "RooflineModel",
    "arithmetic_intensity",
]
