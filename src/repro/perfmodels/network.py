"""Effective-bandwidth (b_eff-style) network performance model — extension.

HPCC's b_eff measures the *average* per-process communication bandwidth
over a mix of ring and random-neighbour patterns at several message sizes.
The model averages the Hockney rate ``m / (alpha' + m/beta)`` over a
geometric ladder of message sizes (the b_eff rules use 21 sizes from 1 B to
1/128 of memory; a short ladder captures the same latency-vs-bandwidth
blend), with ``alpha'`` the topology's mean latency and ``beta`` the link
bandwidth shared by the ranks on a node.

Reported metric: aggregate bytes/s (``b_eff = avg_rank_bw x p``), matching
how the suite's other members report aggregate rates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..cluster.cluster import ClusterSpec
from ..exceptions import BenchmarkError
from ..sim.communication import CommunicationModel
from ..validation import check_positive, check_positive_int

__all__ = ["EffectiveBandwidthModel", "EffectiveBandwidthPrediction"]

#: Message-size ladder (bytes): latency-bound to bandwidth-bound.
DEFAULT_MESSAGE_SIZES: Tuple[float, ...] = (1e3, 8e3, 64e3, 512e3, 4e6)


@dataclass(frozen=True)
class EffectiveBandwidthPrediction:
    """Predicted effective bandwidth of one run."""

    num_ranks: int
    rounds: int
    time_s: float
    per_rank_bandwidth: float
    aggregate_bandwidth: float
    bytes_moved: float


@dataclass(frozen=True)
class EffectiveBandwidthModel:
    """b_eff-style predictor for one cluster."""

    cluster: ClusterSpec
    message_sizes: Tuple[float, ...] = DEFAULT_MESSAGE_SIZES

    def __post_init__(self) -> None:
        if not self.message_sizes:
            raise BenchmarkError("need at least one message size")
        for m in self.message_sizes:
            check_positive(m, "message size", exc=BenchmarkError)

    def per_rank_bandwidth(self, num_ranks: int, *, ranks_per_node: int = 0) -> float:
        """Mean bytes/s per rank across the message-size ladder.

        The node's link is shared by its ranks, so per-rank bandwidth
        divides by ranks-per-node; single-node runs exchange through
        shared memory at the intra-node rate.
        """
        check_positive_int(num_ranks, "num_ranks", exc=BenchmarkError)
        if num_ranks > self.cluster.total_cores:
            raise BenchmarkError(
                f"{num_ranks} ranks exceed cluster capacity {self.cluster.total_cores}"
            )
        k = ranks_per_node or math.ceil(num_ranks / self.cluster.num_nodes)
        k = min(k, num_ranks)
        comm = CommunicationModel(cluster=self.cluster)
        alpha = comm.effective_latency()
        if math.ceil(num_ranks / k) <= 1:
            beta = 4e9  # intra-node copies
        else:
            beta = self.cluster.node.nic.bandwidth / k
        rates = [m / (alpha + m / beta) for m in self.message_sizes]
        # b_eff uses a logarithmic average over sizes: plain mean over the
        # geometric ladder is equivalent
        return sum(rates) / len(rates)

    def predict(
        self, num_ranks: int, *, rounds: int = 1000, ranks_per_node: int = 0
    ) -> EffectiveBandwidthPrediction:
        """Predict ``rounds`` sweeps of the message ladder per rank."""
        check_positive_int(rounds, "rounds", exc=BenchmarkError)
        per_rank = self.per_rank_bandwidth(num_ranks, ranks_per_node=ranks_per_node)
        bytes_per_round = sum(self.message_sizes)
        time_s = rounds * bytes_per_round / per_rank
        return EffectiveBandwidthPrediction(
            num_ranks=num_ranks,
            rounds=rounds,
            time_s=time_s,
            per_rank_bandwidth=per_rank,
            aggregate_bandwidth=per_rank * num_ranks,
            bytes_moved=rounds * bytes_per_round * num_ranks,
        )

    def rounds_for_time(
        self, target_seconds: float, num_ranks: int, *, ranks_per_node: int = 0
    ) -> int:
        """Round count whose predicted runtime is ~``target_seconds``."""
        check_positive(target_seconds, "target_seconds", exc=BenchmarkError)
        one = self.predict(num_ranks, rounds=1, ranks_per_node=ranks_per_node)
        return max(1, round(target_seconds / one.time_s))
