"""MPI process placement onto cluster nodes.

Two standard policies:

* :func:`breadth_first_placement` — cyclic / round-robin over nodes, the
  default of most MPI launchers (``--map-by node``) and what the paper's
  process sweeps imply: 16 processes on an 8-node cluster means 2 per node.
* :func:`packed_placement` — fill each node's cores before moving on
  (``--map-by core``), kept for the placement ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..cluster.cluster import ClusterSpec
from ..exceptions import PlacementError
from ..validation import check_positive_int

__all__ = ["Placement", "breadth_first_placement", "packed_placement"]


@dataclass(frozen=True)
class Placement:
    """An immutable rank -> node assignment over a cluster."""

    cluster: ClusterSpec
    node_of_rank: Tuple[int, ...]
    policy: str

    def __post_init__(self) -> None:
        if not self.node_of_rank:
            raise PlacementError("placement must contain at least one rank")
        counts: Dict[int, int] = {}
        for rank, node in enumerate(self.node_of_rank):
            if not 0 <= node < self.cluster.num_nodes:
                raise PlacementError(
                    f"rank {rank} placed on node {node}, cluster has {self.cluster.num_nodes}"
                )
            counts[node] = counts.get(node, 0) + 1
        per_node_cores = self.cluster.node.cores
        for node, count in counts.items():
            if count > per_node_cores:
                raise PlacementError(
                    f"node {node} assigned {count} ranks but has {per_node_cores} cores"
                )
        object.__setattr__(self, "_counts", counts)

    @property
    def num_ranks(self) -> int:
        """Total MPI ranks placed."""
        return len(self.node_of_rank)

    @property
    def nodes_used(self) -> List[int]:
        """Sorted node indices hosting at least one rank."""
        return sorted(self._counts)

    def ranks_on_node(self, node: int) -> List[int]:
        """Rank ids assigned to ``node``."""
        return [r for r, n in enumerate(self.node_of_rank) if n == node]

    def ranks_per_node(self, node: int) -> int:
        """Number of ranks on ``node`` (0 for unused nodes)."""
        return self._counts.get(node, 0)

    def max_ranks_per_node(self) -> int:
        """Largest per-node rank count."""
        return max(self._counts.values())


def breadth_first_placement(cluster: ClusterSpec, num_ranks: int) -> Placement:
    """Round-robin ranks over nodes: rank ``r`` lands on ``r % num_nodes``."""
    check_positive_int(num_ranks, "num_ranks", exc=PlacementError)
    if num_ranks > cluster.total_cores:
        raise PlacementError(
            f"{num_ranks} ranks exceed cluster capacity of {cluster.total_cores} cores"
        )
    mapping = tuple(r % cluster.num_nodes for r in range(num_ranks))
    return Placement(cluster=cluster, node_of_rank=mapping, policy="breadth-first")


def packed_placement(cluster: ClusterSpec, num_ranks: int) -> Placement:
    """Fill node 0's cores, then node 1's, and so on."""
    check_positive_int(num_ranks, "num_ranks", exc=PlacementError)
    if num_ranks > cluster.total_cores:
        raise PlacementError(
            f"{num_ranks} ranks exceed cluster capacity of {cluster.total_cores} cores"
        )
    cores = cluster.node.cores
    mapping = tuple(r // cores for r in range(num_ranks))
    return Placement(cluster=cluster, node_of_rank=mapping, policy="packed")
