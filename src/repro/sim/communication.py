"""Communication cost model: Hockney alpha-beta with standard collectives.

Point-to-point time between nodes ``a`` and ``b`` is
``hops(a, b) * alpha + bytes / beta`` where ``alpha`` is the per-hop latency
and ``beta`` the link bandwidth of the cluster's
:class:`~repro.cluster.nic.InterconnectSpec`.  Intra-node messages cost a
fixed small shared-memory latency plus a copy at (high) memory bandwidth.

Collectives use the classic algorithm costs (Thakur et al., "Optimization of
Collective Communication Operations in MPICH"):

* broadcast (binomial tree):       ``ceil(log2 p) * (alpha' + m/beta)``
* allreduce (recursive doubling /
  Rabenseifner for large m):       ``2 log2(p) alpha' + 2 m (p-1)/(p beta)``
* allgather (ring):                ``(p-1) alpha' + (p-1)/p * M/beta``
* alltoall (pairwise exchange):    ``(p-1) (alpha' + m/beta)``

with ``alpha'`` the mean inter-endpoint latency under the topology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cluster.cluster import ClusterSpec
from ..exceptions import SimulationError
from ..validation import check_non_negative, check_positive_int

__all__ = ["CommunicationModel"]

#: Latency of a shared-memory (intra-node) message.
_INTRA_NODE_LATENCY_S = 0.4e-6
#: Effective bytes/s of an intra-node copy (bounded by memory bandwidth).
_INTRA_NODE_BANDWIDTH = 4e9


@dataclass(frozen=True)
class CommunicationModel:
    """Message costs over a cluster's interconnect."""

    cluster: ClusterSpec

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def p2p_time(self, message_bytes: float, node_a: int, node_b: int) -> float:
        """Seconds to move one message between two ranks' nodes."""
        check_non_negative(message_bytes, "message_bytes", exc=SimulationError)
        if node_a == node_b:
            return _INTRA_NODE_LATENCY_S + message_bytes / _INTRA_NODE_BANDWIDTH
        nic = self.cluster.node.nic
        hops = self.cluster.topology.hops(node_a, node_b)
        return hops * nic.latency_s + message_bytes / nic.bandwidth

    def effective_latency(self) -> float:
        """Mean inter-endpoint latency (used inside collective formulas)."""
        nic = self.cluster.node.nic
        if self.cluster.num_nodes == 1:
            return _INTRA_NODE_LATENCY_S
        return self.cluster.topology.mean_hops() * nic.latency_s

    # ------------------------------------------------------------------
    # Collectives (p = participating ranks, m = bytes per rank)
    # ------------------------------------------------------------------
    def broadcast_time(self, message_bytes: float, num_ranks: int) -> float:
        """Binomial-tree broadcast of ``message_bytes`` to ``num_ranks``."""
        check_non_negative(message_bytes, "message_bytes", exc=SimulationError)
        check_positive_int(num_ranks, "num_ranks", exc=SimulationError)
        if num_ranks == 1:
            return 0.0
        rounds = math.ceil(math.log2(num_ranks))
        alpha = self.effective_latency()
        beta = self.cluster.node.nic.bandwidth
        return rounds * (alpha + message_bytes / beta)

    def allreduce_time(self, message_bytes: float, num_ranks: int) -> float:
        """Rabenseifner-style allreduce of ``message_bytes`` per rank."""
        check_non_negative(message_bytes, "message_bytes", exc=SimulationError)
        check_positive_int(num_ranks, "num_ranks", exc=SimulationError)
        if num_ranks == 1:
            return 0.0
        alpha = self.effective_latency()
        beta = self.cluster.node.nic.bandwidth
        p = num_ranks
        return 2 * math.log2(p) * alpha + 2 * message_bytes * (p - 1) / (p * beta)

    def allgather_time(self, message_bytes_per_rank: float, num_ranks: int) -> float:
        """Ring allgather; each rank contributes ``message_bytes_per_rank``."""
        check_non_negative(message_bytes_per_rank, "message_bytes_per_rank", exc=SimulationError)
        check_positive_int(num_ranks, "num_ranks", exc=SimulationError)
        if num_ranks == 1:
            return 0.0
        alpha = self.effective_latency()
        beta = self.cluster.node.nic.bandwidth
        p = num_ranks
        total = message_bytes_per_rank * p
        return (p - 1) * alpha + (p - 1) / p * total / beta

    def alltoall_time(self, message_bytes_per_pair: float, num_ranks: int) -> float:
        """Pairwise-exchange all-to-all."""
        check_non_negative(message_bytes_per_pair, "message_bytes_per_pair", exc=SimulationError)
        check_positive_int(num_ranks, "num_ranks", exc=SimulationError)
        if num_ranks == 1:
            return 0.0
        alpha = self.effective_latency()
        beta = self.cluster.node.nic.bandwidth
        return (num_ranks - 1) * (alpha + message_bytes_per_pair / beta)

    def barrier_time(self, num_ranks: int) -> float:
        """Dissemination barrier: ``ceil(log2 p)`` latency rounds."""
        check_positive_int(num_ranks, "num_ranks", exc=SimulationError)
        if num_ranks == 1:
            return 0.0
        return math.ceil(math.log2(num_ranks)) * self.effective_latency()
