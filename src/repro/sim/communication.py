"""Communication cost model: Hockney alpha-beta with standard collectives.

Point-to-point time between nodes ``a`` and ``b`` is
``hops(a, b) * alpha + bytes / beta`` where ``alpha`` is the per-hop latency
and ``beta`` the link bandwidth of the cluster's
:class:`~repro.cluster.nic.InterconnectSpec`.  Intra-node messages cost a
fixed small shared-memory latency plus a copy at (high) memory bandwidth.

Collectives use the classic algorithm costs (Thakur et al., "Optimization of
Collective Communication Operations in MPICH"):

* broadcast (binomial tree):       ``ceil(log2 p) * (alpha' + m/beta)``
* allreduce (recursive doubling /
  Rabenseifner for large m):       ``2 log2(p) alpha' + 2 m (p-1)/(p beta)``
* allgather (ring):                ``(p-1) alpha' + (p-1)/p * M/beta``
* alltoall (pairwise exchange):    ``(p-1) (alpha' + m/beta)``

with ``alpha'`` the mean inter-endpoint latency under the topology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..cluster.cluster import ClusterSpec
from ..exceptions import SimulationError
from ..validation import check_non_negative, check_positive_int

__all__ = ["CommunicationModel"]

#: Latency of a shared-memory (intra-node) message.
_INTRA_NODE_LATENCY_S = 0.4e-6
#: Effective bytes/s of an intra-node copy (bounded by memory bandwidth).
_INTRA_NODE_BANDWIDTH = 4e9


@dataclass(frozen=True)
class CommunicationModel:
    """Message costs over a cluster's interconnect."""

    cluster: ClusterSpec

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def p2p_time(self, message_bytes: float, node_a: int, node_b: int) -> float:
        """Seconds to move one message between two ranks' nodes."""
        check_non_negative(message_bytes, "message_bytes", exc=SimulationError)
        if node_a == node_b:
            return _INTRA_NODE_LATENCY_S + message_bytes / _INTRA_NODE_BANDWIDTH
        nic = self.cluster.node.nic
        hops = self.cluster.topology.hops(node_a, node_b)
        return hops * nic.latency_s + message_bytes / nic.bandwidth

    def effective_latency(self) -> float:
        """Mean inter-endpoint latency (used inside collective formulas)."""
        nic = self.cluster.node.nic
        if self.cluster.num_nodes == 1:
            return _INTRA_NODE_LATENCY_S
        return self.cluster.topology.mean_hops() * nic.latency_s

    # ------------------------------------------------------------------
    # Collectives (p = participating ranks, m = bytes per rank)
    # ------------------------------------------------------------------
    def broadcast_time(self, message_bytes: float, num_ranks: int) -> float:
        """Binomial-tree broadcast of ``message_bytes`` to ``num_ranks``."""
        check_non_negative(message_bytes, "message_bytes", exc=SimulationError)
        check_positive_int(num_ranks, "num_ranks", exc=SimulationError)
        if num_ranks == 1:
            return 0.0
        rounds = math.ceil(math.log2(num_ranks))
        alpha = self.effective_latency()
        beta = self.cluster.node.nic.bandwidth
        return rounds * (alpha + message_bytes / beta)

    def allreduce_time(self, message_bytes: float, num_ranks: int) -> float:
        """Rabenseifner-style allreduce of ``message_bytes`` per rank."""
        check_non_negative(message_bytes, "message_bytes", exc=SimulationError)
        check_positive_int(num_ranks, "num_ranks", exc=SimulationError)
        if num_ranks == 1:
            return 0.0
        alpha = self.effective_latency()
        beta = self.cluster.node.nic.bandwidth
        p = num_ranks
        return 2 * math.log2(p) * alpha + 2 * message_bytes * (p - 1) / (p * beta)

    def allgather_time(self, message_bytes_per_rank: float, num_ranks: int) -> float:
        """Ring allgather; each rank contributes ``message_bytes_per_rank``."""
        check_non_negative(message_bytes_per_rank, "message_bytes_per_rank", exc=SimulationError)
        check_positive_int(num_ranks, "num_ranks", exc=SimulationError)
        if num_ranks == 1:
            return 0.0
        alpha = self.effective_latency()
        beta = self.cluster.node.nic.bandwidth
        p = num_ranks
        total = message_bytes_per_rank * p
        return (p - 1) * alpha + (p - 1) / p * total / beta

    def alltoall_time(self, message_bytes_per_pair: float, num_ranks: int) -> float:
        """Pairwise-exchange all-to-all."""
        check_non_negative(message_bytes_per_pair, "message_bytes_per_pair", exc=SimulationError)
        check_positive_int(num_ranks, "num_ranks", exc=SimulationError)
        if num_ranks == 1:
            return 0.0
        alpha = self.effective_latency()
        beta = self.cluster.node.nic.bandwidth
        return (num_ranks - 1) * (alpha + message_bytes_per_pair / beta)

    # ------------------------------------------------------------------
    # Batch (vectorized) forms — used when compiling programs for
    # thousands of ranks, where per-message Python calls would dominate.
    # Each is elementwise identical to its scalar counterpart.
    # ------------------------------------------------------------------
    #: Collective ops accepted by :meth:`collective_times`.
    COLLECTIVE_OPS = ("broadcast", "allreduce", "allgather", "alltoall")

    def collective_times(self, op: str, message_bytes, num_ranks: int) -> np.ndarray:
        """Vectorized collective cost for an array of message sizes.

        ``collective_times(op, m, p)[i] == <op>_time(m[i], p)`` exactly:
        the same alpha-beta formulas evaluated as array expressions.
        """
        if op not in self.COLLECTIVE_OPS:
            raise SimulationError(
                f"op must be one of {self.COLLECTIVE_OPS}, got {op!r}"
            )
        m = np.asarray(message_bytes, dtype=float)
        if m.size and not (m >= 0).all():
            raise SimulationError("message_bytes must be >= 0")
        check_positive_int(num_ranks, "num_ranks", exc=SimulationError)
        if num_ranks == 1:
            return np.zeros(m.shape)
        alpha = self.effective_latency()
        beta = self.cluster.node.nic.bandwidth
        p = num_ranks
        if op == "broadcast":
            return math.ceil(math.log2(p)) * (alpha + m / beta)
        if op == "allreduce":
            return 2 * math.log2(p) * alpha + 2 * m * (p - 1) / (p * beta)
        if op == "allgather":
            return (p - 1) * alpha + (p - 1) / p * (m * p) / beta
        # alltoall
        return (p - 1) * (alpha + m / beta)

    def p2p_times(self, message_bytes, node_a, node_b) -> np.ndarray:
        """Vectorized :meth:`p2p_time` over arrays of messages/endpoints.

        ``message_bytes``, ``node_a`` and ``node_b`` broadcast together;
        hop counts are looked up once per distinct node pair.
        """
        m, a, b = np.broadcast_arrays(
            np.asarray(message_bytes, dtype=float),
            np.asarray(node_a, dtype=np.intp),
            np.asarray(node_b, dtype=np.intp),
        )
        if m.size and not (m >= 0).all():
            raise SimulationError("message_bytes must be >= 0")
        nic = self.cluster.node.nic
        out = np.empty(m.shape)
        intra = a == b
        out[intra] = _INTRA_NODE_LATENCY_S + m[intra] / _INTRA_NODE_BANDWIDTH
        inter = ~intra
        if inter.any():
            lo = np.minimum(a[inter], b[inter])
            hi = np.maximum(a[inter], b[inter])
            pairs, inv = np.unique(np.stack([lo, hi]), axis=1, return_inverse=True)
            hops_of_pair = np.fromiter(
                (self.cluster.topology.hops(int(x), int(y)) for x, y in pairs.T),
                float,
                pairs.shape[1],
            )
            out[inter] = hops_of_pair[inv] * nic.latency_s + m[inter] / nic.bandwidth
        return out

    def barrier_time(self, num_ranks: int) -> float:
        """Dissemination barrier: ``ceil(log2 p)`` latency rounds."""
        check_positive_int(num_ranks, "num_ranks", exc=SimulationError)
        if num_ranks == 1:
            return 0.0
        return math.ceil(math.log2(num_ranks)) * self.effective_latency()
