"""Phase-based workload description.

A rank's program is a list of :class:`Phase` objects executed in order.
Each phase has a fixed duration (computed upstream by the performance
models) and declares what the rank demands from its node while the phase
runs:

* ``cpu_intensity`` — how power-hungry the busy core is (1.0 = dense
  compute, ~0.6 = bandwidth-bound, ~0.15 = blocked on I/O or messages);
* ``memory`` / ``storage`` / ``nic`` — the fraction of the *node's*
  sustained bandwidth of that resource this single rank consumes.  When
  several ranks share a node their fractions add (saturating at 1) in
  :mod:`repro.sim.executor`.

:data:`PhaseKind.BARRIER` phases have zero duration and synchronize all
ranks; the engine inserts explicit wait intervals for early arrivers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..exceptions import SimulationError
from ..validation import check_fraction, check_non_negative

__all__ = [
    "PhaseKind",
    "Phase",
    "RankProgram",
    "barrier",
    "compute_phase",
    "memory_phase",
    "io_phase",
    "comm_phase",
    "idle_phase",
    "WAIT_INTENSITY",
]

#: CPU intensity of a core spinning/blocking at a barrier or in MPI_Wait.
WAIT_INTENSITY = 0.15


class PhaseKind(str, enum.Enum):
    """What a rank is doing during a phase."""

    COMPUTE = "compute"
    MEMORY = "memory"
    IO = "io"
    COMMUNICATION = "communication"
    BARRIER = "barrier"
    IDLE = "idle"
    WAIT = "wait"  # engine-inserted barrier wait


@dataclass(frozen=True, slots=True)
class Phase:
    """One phase of one rank's program (see module docstring).

    ``slots=True``: phases are shared across thousands of intervals and
    read field-by-field in the power-integration hot loops.
    """

    kind: PhaseKind
    duration_s: float
    cpu_intensity: float = 0.0
    memory: float = 0.0
    storage: float = 0.0
    nic: float = 0.0
    accelerator: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.kind, PhaseKind):
            raise SimulationError(f"kind must be a PhaseKind, got {self.kind!r}")
        check_non_negative(self.duration_s, "duration_s", exc=SimulationError)
        check_fraction(self.cpu_intensity, "cpu_intensity", exc=SimulationError)
        check_fraction(self.memory, "memory", exc=SimulationError)
        check_fraction(self.storage, "storage", exc=SimulationError)
        check_fraction(self.nic, "nic", exc=SimulationError)
        check_fraction(self.accelerator, "accelerator", exc=SimulationError)
        if self.kind is PhaseKind.BARRIER and self.duration_s != 0.0:
            raise SimulationError("BARRIER phases must have zero duration")
        if self.kind is not PhaseKind.BARRIER and self.duration_s == 0.0:
            # zero-length non-barrier phases are legal no-ops but usually a
            # model bug; they are tolerated to keep builders simple.
            pass

    @property
    def occupies_core(self) -> bool:
        """Whether a core counts as busy during this phase."""
        return self.kind not in (PhaseKind.IDLE, PhaseKind.BARRIER)

    def demand_vector(self) -> Tuple[float, float, float, float, float, float]:
        """The phase's demand row for the struct-of-arrays integrators:
        ``(occupies, occupies * intensity, memory, storage, nic,
        accelerator)``.  Only core-occupying phases contribute intensity;
        bandwidth demands always count.  Shared by the columnar
        :class:`~repro.sim.engine.IntervalArrays` and the executor's
        sweep-line power integration."""
        occ = 1.0 if self.occupies_core else 0.0
        return (
            occ,
            occ * self.cpu_intensity,
            self.memory,
            self.storage,
            self.nic,
            self.accelerator,
        )


@dataclass
class RankProgram:
    """The ordered phases of one MPI rank."""

    rank: int
    phases: List[Phase] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise SimulationError(f"rank must be >= 0, got {self.rank}")

    def append(self, phase: Phase) -> "RankProgram":
        """Append a phase (returns self for chaining)."""
        self.phases.append(phase)
        return self

    def extend(self, phases: Sequence[Phase]) -> "RankProgram":
        """Append several phases (returns self for chaining)."""
        self.phases.extend(phases)
        return self

    @property
    def barrier_count(self) -> int:
        """Number of barrier phases (must match across ranks)."""
        return sum(1 for p in self.phases if p.kind is PhaseKind.BARRIER)

    @property
    def busy_time(self) -> float:
        """Sum of phase durations, excluding engine-inserted waits."""
        return sum(p.duration_s for p in self.phases)


# ----------------------------------------------------------------------
# Phase constructors
# ----------------------------------------------------------------------
def barrier() -> Phase:
    """A synchronization point across all ranks."""
    return Phase(kind=PhaseKind.BARRIER, duration_s=0.0, label="barrier")


def compute_phase(
    duration_s: float,
    *,
    intensity: float = 1.0,
    memory: float = 0.0,
    accelerator: float = 0.0,
    label: str = "compute",
) -> Phase:
    """Dense compute on one core (optionally with a memory-traffic share
    and an accelerator-offload share)."""
    return Phase(
        kind=PhaseKind.COMPUTE,
        duration_s=duration_s,
        cpu_intensity=intensity,
        memory=memory,
        accelerator=accelerator,
        label=label,
    )


def memory_phase(duration_s: float, *, memory: float, intensity: float = 0.6, label: str = "memory") -> Phase:
    """Bandwidth-bound work: core busy at reduced intensity, DRAM streaming."""
    return Phase(
        kind=PhaseKind.MEMORY,
        duration_s=duration_s,
        cpu_intensity=intensity,
        memory=memory,
        label=label,
    )


def io_phase(duration_s: float, *, storage: float, intensity: float = 0.15, label: str = "io") -> Phase:
    """I/O-bound work: core mostly blocked, disk streaming."""
    return Phase(
        kind=PhaseKind.IO,
        duration_s=duration_s,
        cpu_intensity=intensity,
        storage=storage,
        label=label,
    )


def comm_phase(duration_s: float, *, nic: float = 0.8, intensity: float = WAIT_INTENSITY, label: str = "comm") -> Phase:
    """Message exchange: core blocked in MPI, NIC streaming."""
    return Phase(
        kind=PhaseKind.COMMUNICATION,
        duration_s=duration_s,
        cpu_intensity=intensity,
        nic=nic,
        label=label,
    )


def idle_phase(duration_s: float, *, label: str = "idle") -> Phase:
    """The rank does nothing (core considered free)."""
    return Phase(kind=PhaseKind.IDLE, duration_s=duration_s, label=label)
