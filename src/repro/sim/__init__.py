"""Execution substrate: run phase-based MPI workloads on a simulated cluster.

A benchmark is compiled (by :mod:`repro.benchmarks` using
:mod:`repro.perfmodels`) into one *program* per MPI rank: a sequence of
:class:`~repro.sim.workload.Phase` objects with fixed durations and per-rank
resource demands, separated by barriers.  The discrete-event engine
(:mod:`repro.sim.engine`) executes the programs, resolving barrier waits, and
yields per-rank busy/wait intervals.  The executor
(:mod:`repro.sim.executor`) folds those intervals into per-node utilization
timelines, evaluates the node power models, sums wall power across *all*
nodes of the cluster (idle nodes included — the meter wraps the whole system,
paper Figure 1), and meters the result.
"""

from .workload import Phase, PhaseKind, RankProgram, barrier, compute_phase, memory_phase, io_phase, comm_phase, idle_phase
from .placement import Placement, breadth_first_placement, packed_placement
from .communication import CommunicationModel
from .engine import SimulationEngine, RankInterval, IntervalArrays
from .executor import ClusterExecutor, RunRecord

__all__ = [
    "Phase",
    "PhaseKind",
    "RankProgram",
    "barrier",
    "compute_phase",
    "memory_phase",
    "io_phase",
    "comm_phase",
    "idle_phase",
    "Placement",
    "breadth_first_placement",
    "packed_placement",
    "CommunicationModel",
    "SimulationEngine",
    "RankInterval",
    "IntervalArrays",
    "ClusterExecutor",
    "RunRecord",
]
