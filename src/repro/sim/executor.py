"""Cluster executor: rank intervals -> node utilization -> metered power.

This is the glue between the discrete-event engine and the power substrate.
Given a placement and the engine's per-rank intervals it

1. builds, for every node, a piecewise-constant
   :class:`~repro.power.components.NodeUtilization` timeline (ranks sharing a
   node add their bandwidth demands, saturating at 1);
2. evaluates the node power model on every slice — *including idle nodes and
   idle tails*, because the wall-plug meter wraps the entire cluster for the
   entire run (paper Figure 1);
3. sums node wall power into a cluster-level ground-truth
   :class:`~repro.power.trace.PiecewisePower`;
4. samples it through the configured :class:`~repro.power.meter.WallPlugMeter`.

The result is a :class:`RunRecord` carrying both the exact and the measured
power/energy, so callers can use the measured values (as the paper does) and
tests can bound the measurement error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry as tele
from ..cluster.cluster import ClusterSpec
from ..exceptions import SimulationError
from ..faults import FaultInjector
from ..power.components import NodeUtilization
from ..power.meter import WATTS_UP_PRO, WallPlugMeter
from ..power.node_power import NodePowerModel
from ..power.trace import PiecewisePower, PowerTrace
from ..rng import RandomState
from .engine import RankInterval, SimulationEngine
from .placement import Placement
from .workload import RankProgram

__all__ = ["ClusterExecutor", "RunRecord"]

_EPS = 1e-9


@dataclass(frozen=True)
class RunRecord:
    """Everything measured (and the underlying truth) for one run."""

    label: str
    cluster: ClusterSpec
    num_ranks: int
    makespan_s: float
    truth: PiecewisePower
    trace: PowerTrace
    #: Where the joules went: DC energy per component class (``base``,
    #: ``cpu``, ``memory``, ``storage``, ``nic``, optionally
    #: ``accelerators``) plus ``psu_loss`` — sums to ``true_energy_j``.
    #: Empty for deserialized records (the attribution is not archived).
    energy_breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def measured_energy_j(self) -> float:
        """Trapezoidal energy from the meter log (what the paper reports)."""
        return self.trace.energy()

    @property
    def measured_mean_power_w(self) -> float:
        """Mean wall watts from the meter log."""
        return self.trace.mean_power()

    @property
    def true_energy_j(self) -> float:
        """Exact energy of the ground-truth power curve."""
        return self.truth.energy()

    @property
    def true_mean_power_w(self) -> float:
        """Exact mean wall watts."""
        return self.truth.mean_power()

    @property
    def measurement_error_fraction(self) -> float:
        """Relative error of measured vs. true energy."""
        true = self.true_energy_j
        if true == 0:
            return 0.0
        return (self.measured_energy_j - true) / true


class ClusterExecutor:
    """Runs rank programs on a cluster behind a wall-plug meter.

    Parameters
    ----------
    cluster:
        The machine.
    node_power:
        Power model applied to every node; defaults to
        ``NodePowerModel(node=cluster.node)``.
    meter:
        The metering instrument; defaults to a seeded Watts Up? PRO model.
    rng:
        Seed for the default meter (ignored when ``meter`` is given).
    faults:
        Optional :class:`~repro.faults.FaultInjector`.  When set, the
        default meter's spec is degraded per the plan (sample dropout) and
        every :meth:`execute` call may raise an injected
        :class:`~repro.exceptions.NodeCrashFault` — drawn deterministically
        from the plan's seed — after the engine runs but before any power
        is metered, modelling a node dying mid-phase.
    metering:
        Where the instrument sits:

        * ``"system"`` (default, the paper's Figure 1): the meter wraps the
          whole cluster — idle nodes bill power;
        * ``"active-nodes"``: only nodes hosting at least one rank are
          metered (a common lab shortcut).  Kept for the metering-boundary
          ablation; it visibly reshapes every EE curve.
    """

    #: Valid metering boundaries.
    METERING_MODES = ("system", "active-nodes")

    def __init__(
        self,
        cluster: ClusterSpec,
        *,
        node_power: Optional[NodePowerModel] = None,
        meter: Optional[WallPlugMeter] = None,
        rng: RandomState = None,
        faults: Optional[FaultInjector] = None,
        metering: str = "system",
    ):
        if metering not in self.METERING_MODES:
            raise SimulationError(
                f"metering must be one of {self.METERING_MODES}, got {metering!r}"
            )
        self.cluster = cluster
        self.node_power = node_power or NodePowerModel(node=cluster.node)
        self.faults = faults
        if meter is None:
            spec = faults.meter_spec(WATTS_UP_PRO) if faults else WATTS_UP_PRO
            meter = WallPlugMeter(spec, rng=rng)
        self.meter = meter
        self.metering = metering

    # ------------------------------------------------------------------
    def execute(
        self,
        placement: Placement,
        programs: Sequence[RankProgram],
        *,
        label: str = "run",
    ) -> RunRecord:
        """Simulate the programs and return the metered record."""
        if placement.cluster is not self.cluster and placement.cluster != self.cluster:
            raise SimulationError("placement was built for a different cluster")
        if placement.num_ranks != len(programs):
            raise SimulationError(
                f"placement has {placement.num_ranks} ranks, got {len(programs)} programs"
            )
        engine = SimulationEngine(programs)
        intervals = engine.run()
        makespan = engine.makespan(intervals)
        if makespan <= 0:
            raise SimulationError("run has zero duration; no phases with time in any program")
        if self.faults is not None:
            self.faults.maybe_crash(
                label=label, makespan=makespan, num_nodes=self.cluster.num_nodes
            )
        with tele.span("sim.power.integrate", label=label):
            truth, breakdown = self._cluster_power(placement, intervals, makespan)
        with tele.span("sim.power.meter", label=label):
            trace = self.meter.measure(truth)
        return RunRecord(
            label=label,
            cluster=self.cluster,
            num_ranks=placement.num_ranks,
            makespan_s=makespan,
            truth=truth,
            trace=trace,
            energy_breakdown=breakdown,
        )

    # ------------------------------------------------------------------
    def _cluster_power(
        self,
        placement: Placement,
        intervals: List[List[RankInterval]],
        makespan: float,
    ) -> Tuple[PiecewisePower, Dict[str, float]]:
        """(cluster wall-power curve, component DC-energy attribution)."""
        idle_wall = self.node_power.idle_wall_power()
        # Per-node piecewise wall power as (breakpoints, watts-per-slice),
        # accumulating component DC joules along the way.
        breakdown: Dict[str, float] = {}
        node_curves: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        for node in placement.nodes_used:
            node_curves[node] = self._node_power_curve(
                placement, node, intervals, makespan, breakdown
            )
        # Global breakpoints.
        cuts = {0.0, makespan}
        for starts, _ in node_curves.values():
            cuts.update(starts.tolist())
        cut_list = sorted(cuts)
        if self.metering == "system":
            idle_nodes = self.cluster.num_nodes - len(node_curves)
        else:  # active-nodes: unused nodes sit outside the meter
            idle_nodes = 0
        if idle_nodes:
            idle_parts = self.node_power.component_breakdown(NodeUtilization.idle())
            for component, watts in idle_parts.items():
                breakdown[component] = (
                    breakdown.get(component, 0.0) + idle_nodes * watts * makespan
                )
        segments = []
        for t0, t1 in zip(cut_list, cut_list[1:]):
            if t1 - t0 <= _EPS:
                continue
            mid = 0.5 * (t0 + t1)
            watts = idle_nodes * idle_wall
            for starts, node_watts in node_curves.values():
                idx = int(np.searchsorted(starts, mid, side="right") - 1)
                watts += float(node_watts[idx])
            segments.append((t0, t1, watts))
        truth = PiecewisePower(segments)
        # Whatever the wall saw beyond the summed DC is conversion loss.
        breakdown["psu_loss"] = truth.energy() - sum(breakdown.values())
        return truth, breakdown

    def _node_power_curve(
        self,
        placement: Placement,
        node: int,
        intervals: List[List[RankInterval]],
        makespan: float,
        breakdown: Dict[str, float],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(slice starts, wall watts per slice) for one node over [0, makespan].

        Side effect: adds the node's per-component DC joules to ``breakdown``.
        """
        node_intervals: List[RankInterval] = []
        for rank in placement.ranks_on_node(node):
            node_intervals.extend(intervals[rank])
        cuts = {0.0, makespan}
        for iv in node_intervals:
            cuts.add(iv.t_start)
            cuts.add(iv.t_end)
        cut_list = sorted(c for c in cuts if c <= makespan + _EPS)
        starts: List[float] = []
        watts: List[float] = []
        cores = self.cluster.node.cores
        for t0, t1 in zip(cut_list, cut_list[1:]):
            if t1 - t0 <= _EPS:
                continue
            mid = 0.5 * (t0 + t1)
            util = self._slice_utilization(node_intervals, mid, cores)
            starts.append(t0)
            watts.append(self.node_power.wall_power(util))
            for component, dc_watts in self.node_power.component_breakdown(util).items():
                breakdown[component] = breakdown.get(component, 0.0) + dc_watts * (t1 - t0)
        return np.array(starts), np.array(watts)

    @staticmethod
    def _slice_utilization(
        node_intervals: List[RankInterval], t: float, cores: int
    ) -> NodeUtilization:
        """Aggregate the demands of all ranks active on a node at time ``t``."""
        busy = 0
        intensity_sum = 0.0
        memory = storage = nic = accelerator = 0.0
        for iv in node_intervals:
            if iv.t_start - _EPS <= t < iv.t_end - _EPS:
                phase = iv.phase
                if phase.occupies_core:
                    busy += 1
                    intensity_sum += phase.cpu_intensity
                memory += phase.memory
                storage += phase.storage
                nic += phase.nic
                accelerator += phase.accelerator
        if busy == 0:
            return NodeUtilization.idle()
        return NodeUtilization(
            cpu_active_fraction=min(1.0, busy / cores),
            cpu_intensity=min(1.0, intensity_sum / busy),
            memory=min(1.0, memory),
            storage=min(1.0, storage),
            nic=min(1.0, nic),
            accelerator=min(1.0, accelerator),
        )
