"""Cluster executor: rank intervals -> node utilization -> metered power.

This is the glue between the discrete-event engine and the power substrate.
Given a placement and the engine's per-rank intervals it

1. builds, for every node, a piecewise-constant
   :class:`~repro.power.components.NodeUtilization` timeline (ranks sharing a
   node add their bandwidth demands, saturating at 1);
2. evaluates the node power model on every slice — *including idle nodes and
   idle tails*, because the wall-plug meter wraps the entire cluster for the
   entire run (paper Figure 1);
3. sums node wall power into a cluster-level ground-truth
   :class:`~repro.power.trace.PiecewisePower`;
4. samples it through the configured :class:`~repro.power.meter.WallPlugMeter`.

The result is a :class:`RunRecord` carrying both the exact and the measured
power/energy, so callers can use the measured values (as the paper does) and
tests can bound the measurement error.

Integration paths
-----------------

Two implementations of step 1–3 coexist:

* ``integration="vectorized"`` (default) — a sweep-line pipeline.  Per
  node, interval start/end events become difference arrays whose prefix
  sums give every component's demand per timeline slice in O(n log n);
  the slices are priced in a handful of NumPy calls through the power
  stack's struct-of-arrays API
  (:meth:`~repro.power.node_power.NodePowerModel.wall_power_many`).  The
  cross-node merge ``searchsorted``\\ s every node curve onto the global
  cut grid, sums a nodes x cuts watts matrix, compacts runs of equal
  watts, and hands the arrays to
  :meth:`~repro.power.trace.PiecewisePower.from_arrays`.
* ``integration="reference"`` — the original midpoint-scan implementation,
  kept as the scalar oracle: per slice, per node, a Python rescan of every
  rank interval.  O(slices x intervals), but independently simple.

Both paths snap breakpoints that float noise has pushed within ``_EPS`` of
each other onto a single representative *before* slicing, so no slice —
and none of its joules — is ever dropped, and both assert that the final
segments tile ``[0, makespan]`` exactly.  Property tests
(``tests/test_power_integration.py``) pin the two paths to each other on
energy, attribution, and the power curve itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import telemetry as tele
from .. import timeline as tline
from ..cluster.cluster import ClusterSpec
from ..exceptions import SimulationError
from ..faults import FaultInjector
from ..power.components import NodeUtilization, NodeUtilizationArray
from ..power.meter import WATTS_UP_PRO, WallPlugMeter
from ..power.node_power import NodePowerModel
from ..power.trace import PiecewisePower, PowerTrace
from ..rng import RandomState
from .engine import IntervalArrays, RankInterval, SimulationEngine
from .placement import Placement
from .workload import RankProgram

#: Either the columnar fast-path form or the per-rank object view — every
#: integration entry point accepts both.
Intervals = Union["IntervalArrays", List[List[RankInterval]]]

__all__ = ["ClusterExecutor", "RunRecord"]

_EPS = 1e-9


def _snap_cuts(times: np.ndarray, makespan: float) -> np.ndarray:
    """Sorted unique breakpoints over ``[0, makespan]`` with float noise merged.

    Raw cut candidates (interval starts/ends from every rank) can land
    within ``_EPS`` of each other when different ranks accumulate the same
    logical time through different float additions.  Slicing between such
    near-duplicates used to produce sub-``_EPS`` slivers that were silently
    dropped — leaking their joules.  Here every group of candidates closer
    than ``_EPS`` collapses onto a single representative, so all surviving
    slice widths exceed ``_EPS`` and the slices tile the span exactly.

    Callers always include ``0.0`` and ``makespan`` among ``times``; both
    survive as the exact first/last representative.
    """
    arr = np.unique(np.clip(np.asarray(times, dtype=float), 0.0, makespan))
    keep = np.ones(arr.size, dtype=bool)
    np.greater(np.diff(arr), _EPS, out=keep[1:])
    reps = arr[keep]
    if makespan - reps[-1] <= _EPS:
        # the group containing makespan is represented by makespan itself,
        # not by the group's smallest member, so the span closes exactly
        reps[-1] = makespan
    else:  # pragma: no cover - callers pass makespan in `times`
        reps = np.append(reps, makespan)
    return reps


def _assert_tiling(starts: np.ndarray, ends: np.ndarray, makespan: float) -> None:
    """Fail loudly if the segments do not tile ``[0, makespan]`` exactly."""
    if (
        starts.size == 0
        or starts[0] != 0.0
        or ends[-1] != makespan
        or not np.array_equal(ends[:-1], starts[1:])
    ):
        raise SimulationError(
            "internal error: power segments do not tile [0, makespan] exactly"
        )


@dataclass(frozen=True)
class RunRecord:
    """Everything measured (and the underlying truth) for one run."""

    label: str
    cluster: ClusterSpec
    num_ranks: int
    makespan_s: float
    truth: PiecewisePower
    trace: PowerTrace
    #: Where the joules went: DC energy per component class (``base``,
    #: ``cpu``, ``memory``, ``storage``, ``nic``, optionally
    #: ``accelerators``) plus ``psu_loss`` — sums to ``true_energy_j``.
    #: Empty for deserialized records (the attribution is not archived).
    energy_breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def measured_energy_j(self) -> float:
        """Trapezoidal energy from the meter log (what the paper reports)."""
        return self.trace.energy()

    @property
    def measured_mean_power_w(self) -> float:
        """Mean wall watts from the meter log."""
        return self.trace.mean_power()

    @property
    def true_energy_j(self) -> float:
        """Exact energy of the ground-truth power curve."""
        return self.truth.energy()

    @property
    def true_mean_power_w(self) -> float:
        """Exact mean wall watts."""
        return self.truth.mean_power()

    @property
    def measurement_error_fraction(self) -> float:
        """Relative error of measured vs. true energy."""
        true = self.true_energy_j
        if true == 0:
            return 0.0
        return (self.measured_energy_j - true) / true


class ClusterExecutor:
    """Runs rank programs on a cluster behind a wall-plug meter.

    Parameters
    ----------
    cluster:
        The machine.
    node_power:
        Power model applied to every node; defaults to
        ``NodePowerModel(node=cluster.node)``.
    meter:
        The metering instrument; defaults to a seeded Watts Up? PRO model.
    rng:
        Seed for the default meter (ignored when ``meter`` is given).
    faults:
        Optional :class:`~repro.faults.FaultInjector`.  When set, the
        default meter's spec is degraded per the plan (sample dropout) and
        every :meth:`execute` call may raise an injected
        :class:`~repro.exceptions.NodeCrashFault` — drawn deterministically
        from the plan's seed — after the engine runs but before any power
        is metered, modelling a node dying mid-phase.
    metering:
        Where the instrument sits:

        * ``"system"`` (default, the paper's Figure 1): the meter wraps the
          whole cluster — idle nodes bill power;
        * ``"active-nodes"``: only nodes hosting at least one rank are
          metered (a common lab shortcut).  Kept for the metering-boundary
          ablation; it visibly reshapes every EE curve.
    integration:
        Which power-integration pipeline folds rank intervals into the
        cluster power curve:

        * ``"vectorized"`` (default): the sweep-line pipeline (see module
          docstring) — the fast path every campaign and curve runs on;
        * ``"reference"``: the scalar midpoint-scan oracle, kept for
          equivalence testing and as executable documentation.
    engine:
        Which discrete-event engine produces the rank intervals:

        * ``"vectorized"`` (default): the struct-of-arrays sweep engine —
          emits columnar :class:`~repro.sim.engine.IntervalArrays` that
          feed the vectorized integrator with no per-interval objects;
        * ``"reference"``: the original event-heap loop, kept as the
          equivalence-tested oracle.
    """

    #: Valid metering boundaries.
    METERING_MODES = ("system", "active-nodes")
    #: Valid power-integration pipelines.
    INTEGRATION_MODES = ("vectorized", "reference")
    #: Valid discrete-event engine implementations.
    ENGINE_MODES = SimulationEngine.ENGINE_MODES

    def __init__(
        self,
        cluster: ClusterSpec,
        *,
        node_power: Optional[NodePowerModel] = None,
        meter: Optional[WallPlugMeter] = None,
        rng: RandomState = None,
        faults: Optional[FaultInjector] = None,
        metering: str = "system",
        integration: str = "vectorized",
        engine: str = "vectorized",
    ):
        if metering not in self.METERING_MODES:
            raise SimulationError(
                f"metering must be one of {self.METERING_MODES}, got {metering!r}"
            )
        if integration not in self.INTEGRATION_MODES:
            raise SimulationError(
                f"integration must be one of {self.INTEGRATION_MODES}, "
                f"got {integration!r}"
            )
        if engine not in self.ENGINE_MODES:
            raise SimulationError(
                f"engine must be one of {self.ENGINE_MODES}, got {engine!r}"
            )
        self.cluster = cluster
        self.node_power = node_power or NodePowerModel(node=cluster.node)
        self.faults = faults
        if meter is None:
            spec = faults.meter_spec(WATTS_UP_PRO) if faults else WATTS_UP_PRO
            meter = WallPlugMeter(spec, rng=rng)
        self.meter = meter
        self.metering = metering
        self.integration = integration
        self.engine = engine

    # ------------------------------------------------------------------
    def execute(
        self,
        placement: Placement,
        programs: Sequence[RankProgram],
        *,
        label: str = "run",
    ) -> RunRecord:
        """Simulate the programs and return the metered record."""
        if placement.cluster is not self.cluster and placement.cluster != self.cluster:
            raise SimulationError("placement was built for a different cluster")
        if placement.num_ranks != len(programs):
            raise SimulationError(
                f"placement has {placement.num_ranks} ranks, got {len(programs)} programs"
            )
        engine = SimulationEngine(programs, engine=self.engine)
        intervals = engine.run_arrays()
        makespan = intervals.makespan
        if makespan <= 0:
            raise SimulationError("run has zero duration; no phases with time in any program")
        if self.faults is not None:
            self.faults.maybe_crash(
                label=label, makespan=makespan, num_nodes=self.cluster.num_nodes
            )
        # Disarmed timeline capture is this one None-backed check — the
        # same single-global contract as journal emits and telemetry spans.
        capture = tline.TimelineCapture() if tline.capturing() else None
        with tele.span("sim.power.integrate", label=label) as integrate_span:
            truth, breakdown, stats = self.integrate_power(
                placement, intervals, makespan, capture=capture
            )
            integrate_span.set(**stats)
        with tele.span("sim.power.meter", label=label):
            trace = self.meter.measure(truth)
        if capture is not None:
            with tele.span("sim.timeline.capture", label=label) as capture_span:
                run_timeline = tline.build_run_timeline(
                    capture,
                    truth=truth,
                    trace=trace,
                    breakdown=breakdown,
                    label=label,
                    cluster_name=self.cluster.name,
                    num_ranks=placement.num_ranks,
                    num_nodes=self.cluster.num_nodes,
                    engine=self.engine,
                    integration=self.integration,
                    metering=self.metering,
                    idle_wall_w=self.node_power.idle_wall_power(),
                    max_node_wall_w=self.node_power.max_wall_power(),
                    idle_component_w=self.node_power.component_breakdown(
                        NodeUtilization.idle()
                    ),
                )
                tline.record(run_timeline)
                capture_span.set(
                    segments=run_timeline.segments,
                    slices=int(run_timeline.slice_wall_w.size),
                    components=len(run_timeline.components),
                )
            if tele.active():
                tele.count("tgi_timeline_runs_total")
        return RunRecord(
            label=label,
            cluster=self.cluster,
            num_ranks=placement.num_ranks,
            makespan_s=makespan,
            truth=truth,
            trace=trace,
            energy_breakdown=breakdown,
        )

    # ------------------------------------------------------------------
    def integrate_power(
        self,
        placement: Placement,
        intervals: Intervals,
        makespan: float,
        *,
        capture: Optional[tline.TimelineCapture] = None,
    ) -> Tuple[PiecewisePower, Dict[str, float], Dict[str, object]]:
        """Fold rank intervals into the cluster wall-power curve.

        ``intervals`` may be the engine's columnar
        :class:`~repro.sim.engine.IntervalArrays` (the fast path — no
        per-interval objects are ever materialized) or the per-rank
        ``RankInterval`` lists (flattened on entry).

        Returns ``(truth, breakdown, stats)``: the ground-truth
        :class:`~repro.power.trace.PiecewisePower`, the component
        DC-energy attribution, and the integration-path statistics that
        :meth:`execute` attaches to the ``sim.power.integrate`` span
        (``integration``, ``segments_in``, ``segments_out``,
        ``compaction_ratio``).

        With ``capture`` set, the integrator also stashes its columnar
        slice table (start/end/node/wall watts plus per-component DC
        watts) into the :class:`~repro.timeline.TimelineCapture` — on the
        vectorized path these are references to arrays already computed,
        so armed capture adds no meaningful work here.

        Public so perf-watch scenarios can time the integration phase in
        isolation (the engine run happens in their setup).
        """
        if self.integration == "reference":
            return self._integrate_reference(
                placement, intervals, makespan, capture=capture
            )
        return self._integrate_vectorized(
            placement, intervals, makespan, capture=capture
        )

    # -- shared pieces -------------------------------------------------
    def _idle_node_count(self, used: int) -> int:
        if self.metering == "system":
            return self.cluster.num_nodes - used
        return 0  # active-nodes: unused nodes sit outside the meter

    def _add_idle_breakdown(self, breakdown: Dict[str, float], idle_nodes: int, makespan: float) -> None:
        if not idle_nodes:
            return
        idle_parts = self.node_power.component_breakdown(NodeUtilization.idle())
        for component, watts in idle_parts.items():
            breakdown[component] = (
                breakdown.get(component, 0.0) + idle_nodes * watts * makespan
            )

    # -- vectorized sweep-line pipeline --------------------------------
    def _integrate_vectorized(
        self,
        placement: Placement,
        intervals: Intervals,
        makespan: float,
        capture: Optional[tline.TimelineCapture] = None,
    ) -> Tuple[PiecewisePower, Dict[str, float], Dict[str, object]]:
        """Sweep-line integration over flat per-node regions.

        All active nodes are processed as contiguous *regions* of shared
        flat arrays rather than one node at a time: the engine's columnar
        :class:`~repro.sim.engine.IntervalArrays` provides the interval
        endpoints and deduplicated phase-demand rows directly (per-rank
        object lists are flattened once on entry), a single lexsort
        builds every node's snapped cut grid, one ``np.add.at``/``cumsum``
        pair folds every component's demand onto every slice of every
        node, and one
        :meth:`~repro.power.node_power.NodePowerModel.wall_power_many`
        call prices the whole cluster.  Because every interval's +demand
        and -demand both land inside its node's region, the running
        prefix sum returns to zero at each region boundary, so one flat
        ``cumsum`` is safe across regions — there is no per-node Python
        loop anywhere on this path.
        """
        # 1. The columnar form: interval endpoints plus per-interval rows
        # into the deduplicated phase-demand table.  Phases are heavily
        # shared across intervals (and interned for barrier waits), so
        # their demand vectors are gathered through the row-index table
        # instead of being re-read per interval.
        if not isinstance(intervals, IntervalArrays):
            intervals = IntervalArrays.from_interval_lists(intervals)
        n_iv = len(intervals)
        iv_start = np.asarray(intervals.t_start, dtype=float)
        iv_end = np.asarray(intervals.t_end, dtype=float)
        demands = intervals.demand_table()[intervals.phase_row]  # (n_iv, 6)

        # Dense node rows 0..m-1 over the nodes actually hosting ranks.
        nodes_used = placement.nodes_used
        m = len(nodes_used)
        row_of_node = {node: i for i, node in enumerate(nodes_used)}
        node_row_of_rank = np.fromiter(
            (row_of_node[n] for n in placement.node_of_rank),
            np.intp,
            placement.num_ranks,
        )
        iv_node = node_row_of_rank[intervals.rank]

        # 2. Per-node snapped cut grids, all at once: every endpoint plus
        # {0, makespan} per node, ordered by (node, time), deduplicated
        # within _EPS exactly as _snap_cuts does per node.
        node_rows = np.arange(m)
        ev_time = np.concatenate(
            [iv_start, iv_end, np.zeros(m), np.full(m, makespan)]
        )
        np.clip(ev_time, 0.0, makespan, out=ev_time)
        ev_node = np.concatenate([iv_node, iv_node, node_rows, node_rows])
        order = np.lexsort((ev_time, ev_node))
        ev_time = ev_time[order]
        ev_node = ev_node[order]
        new_region = np.empty(ev_node.size, dtype=bool)
        new_region[0] = True
        np.not_equal(ev_node[1:], ev_node[:-1], out=new_region[1:])
        keep = new_region.copy()
        keep[1:] |= (ev_time[1:] - ev_time[:-1]) > _EPS
        cut_time = ev_time[keep]
        cut_node = ev_node[keep]
        # Force each region's final cut to makespan (it represents the
        # snap group containing makespan), mirroring _snap_cuts.
        last_of_region = np.empty(cut_node.size, dtype=bool)
        last_of_region[-1] = True
        np.not_equal(cut_node[1:], cut_node[:-1], out=last_of_region[:-1])
        cut_time[last_of_region] = makespan

        # 3. Interval endpoints -> flat cut positions, one bisection for
        # all nodes: shifting each region by node_row * span keeps the
        # flat key array sorted and confines every lookup to its region.
        span = makespan + 1.0
        cut_keys = cut_node * span + cut_time
        i_start = (
            np.searchsorted(cut_keys, iv_node * span + iv_start + _EPS, side="right") - 1
        )
        i_end = (
            np.searchsorted(cut_keys, iv_node * span + iv_end + _EPS, side="right") - 1
        )

        # 4. Difference arrays + one prefix sum fold every component onto
        # every slice.  Slice p lives between cuts p and p+1 of the same
        # region; each region's deltas cancel to zero by its last cut, so
        # the flat cumsum never bleeds across nodes.
        delta = np.zeros((cut_time.size, 6))
        np.add.at(delta, i_start, demands)
        np.subtract.at(delta, i_end, demands)
        levels = np.cumsum(delta, axis=0)[~last_of_region]
        slice_node = cut_node[~last_of_region]
        slice_start = cut_time[~last_of_region]
        widths = np.empty(cut_time.size)
        widths[:-1] = cut_time[1:] - cut_time[:-1]
        widths = widths[~last_of_region]

        # 5. Utilization and wall watts for every slice of every node in
        # one batched evaluation.  busy counts are sums of 0/1 floats —
        # exact, so the busy-== 0 -> idle() rule matches the scalar oracle.
        busy = levels[:, 0]
        active = busy > 0
        mean_intensity = np.divide(
            levels[:, 1], busy, out=np.zeros(busy.size), where=active
        )

        def demand(level: np.ndarray) -> np.ndarray:
            # Matches the scalar oracle: a node with no core-occupying rank
            # reports idle() — residual demands from non-occupying phases
            # are zeroed, and float cancellation noise is clipped away.
            return np.where(active, np.clip(level, 0.0, 1.0), 0.0)

        util = NodeUtilizationArray(
            cpu_active_fraction=np.where(
                active, np.minimum(1.0, busy / self.cluster.node.cores), 0.0
            ),
            cpu_intensity=np.where(active, np.minimum(1.0, mean_intensity), 0.0),
            memory=demand(levels[:, 2]),
            storage=demand(levels[:, 3]),
            nic=demand(levels[:, 4]),
            accelerator=demand(levels[:, 5]),
        )
        watts = self.node_power.wall_power_many(util)
        breakdown: Dict[str, float] = {}
        components = self.node_power.component_breakdown_many(util)
        for component, dc_watts in components.items():
            breakdown[component] = float(np.dot(dc_watts, widths))
        idle_nodes = self._idle_node_count(m)
        self._add_idle_breakdown(breakdown, idle_nodes, makespan)
        if capture is not None:
            # Armed capture stashes references to arrays this pipeline
            # already computed.  Slice ends are the next cut of the same
            # region (exact floats; each region's final cut is makespan
            # and owns no slice, so its garbage end never survives).
            ends_all = np.empty_like(cut_time)
            ends_all[:-1] = cut_time[1:]
            capture.makespan = makespan
            capture.nodes_used = tuple(nodes_used)
            capture.idle_nodes = idle_nodes
            capture.set_slices(
                start=slice_start,
                end=ends_all[~last_of_region],
                node_row=slice_node,
                wall_w=watts,
                components=components,
            )

        # 6. Per-node compaction (drop breakpoints where the wall watts do
        # not change), then the cross-node merge: every compacted node
        # curve is sampled onto the global snapped cut grid with a single
        # region-keyed bisection, summed, and compacted again.
        first_slice = np.empty(slice_node.size, dtype=bool)
        first_slice[0] = True
        np.not_equal(slice_node[1:], slice_node[:-1], out=first_slice[1:])
        keep_c = first_slice.copy()
        keep_c[1:] |= watts[1:] != watts[:-1]
        c_start = slice_start[keep_c]
        c_watts = watts[keep_c]
        c_keys = slice_node[keep_c] * span + c_start

        cuts = _snap_cuts(
            np.concatenate([np.array([0.0, makespan]), c_start]), makespan
        )
        mids = 0.5 * (cuts[:-1] + cuts[1:])
        sample_keys = (node_rows[:, None] * span + mids[None, :]).ravel()
        idx = np.searchsorted(c_keys, sample_keys, side="right") - 1
        idle_wall = self.node_power.idle_wall_power()
        total = idle_nodes * idle_wall + c_watts[idx].reshape(m, mids.size).sum(axis=0)

        # Compact runs of equal watts before constructing the truth curve.
        keep_g = np.ones(total.size, dtype=bool)
        np.not_equal(total[1:], total[:-1], out=keep_g[1:])
        seg_starts = cuts[:-1][keep_g]
        seg_ends = np.concatenate([seg_starts[1:], [makespan]])
        seg_watts = total[keep_g]
        _assert_tiling(seg_starts, seg_ends, makespan)
        truth = PiecewisePower.from_arrays(seg_starts, seg_ends, seg_watts)
        # Whatever the wall saw beyond the summed DC is conversion loss.
        breakdown["psu_loss"] = truth.energy() - sum(breakdown.values())
        stats = {
            "integration": "vectorized",
            "segments_in": int(total.size),
            "segments_out": int(seg_watts.size),
            "compaction_ratio": float(seg_watts.size / total.size) if total.size else 1.0,
        }
        return truth, breakdown, stats

    # -- scalar reference oracle ---------------------------------------
    def _integrate_reference(
        self,
        placement: Placement,
        intervals: Intervals,
        makespan: float,
        capture: Optional[tline.TimelineCapture] = None,
    ) -> Tuple[PiecewisePower, Dict[str, float], Dict[str, object]]:
        """The original midpoint-scan integration, kept as the oracle."""
        if isinstance(intervals, IntervalArrays):
            intervals = intervals.to_interval_lists()
        idle_wall = self.node_power.idle_wall_power()
        # Per-node piecewise wall power as (breakpoints, watts-per-slice),
        # accumulating component DC joules along the way.
        breakdown: Dict[str, float] = {}
        node_curves: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        for node_row, node in enumerate(placement.nodes_used):
            node_curves[node] = self._node_power_curve(
                placement,
                node,
                intervals,
                makespan,
                breakdown,
                capture=capture,
                node_row=node_row,
            )
        # Global breakpoints (snapped, so no sliver is silently dropped).
        cut_arrays = [np.array([0.0, makespan])]
        for starts, _ in node_curves.values():
            cut_arrays.append(starts)
        cut_list = _snap_cuts(np.concatenate(cut_arrays), makespan).tolist()
        idle_nodes = self._idle_node_count(len(node_curves))
        self._add_idle_breakdown(breakdown, idle_nodes, makespan)
        if capture is not None:
            capture.makespan = makespan
            capture.nodes_used = tuple(placement.nodes_used)
            capture.idle_nodes = idle_nodes
            capture.finalize_reference()
        seg_starts: List[float] = []
        seg_watts: List[float] = []
        for t0, t1 in zip(cut_list, cut_list[1:]):
            mid = 0.5 * (t0 + t1)
            watts = idle_nodes * idle_wall
            for starts, node_watts in node_curves.values():
                idx = int(np.searchsorted(starts, mid, side="right") - 1)
                watts += float(node_watts[max(idx, 0)])
            seg_starts.append(t0)
            seg_watts.append(watts)
        starts_arr = np.array(seg_starts)
        ends_arr = np.array(cut_list[1:])
        _assert_tiling(starts_arr, ends_arr, makespan)
        truth = PiecewisePower.from_arrays(starts_arr, ends_arr, np.array(seg_watts))
        # Whatever the wall saw beyond the summed DC is conversion loss.
        breakdown["psu_loss"] = truth.energy() - sum(breakdown.values())
        n_segments = len(seg_watts)
        stats = {
            "integration": "reference",
            "segments_in": n_segments,
            "segments_out": n_segments,
            "compaction_ratio": 1.0,
        }
        return truth, breakdown, stats

    def _node_power_curve(
        self,
        placement: Placement,
        node: int,
        intervals: List[List[RankInterval]],
        makespan: float,
        breakdown: Dict[str, float],
        capture: Optional[tline.TimelineCapture] = None,
        node_row: int = 0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(slice starts, wall watts per slice) for one node over [0, makespan].

        Side effect: adds the node's per-component DC joules to ``breakdown``
        (and, with ``capture`` set, appends every slice to the timeline
        capture under dense row ``node_row``).
        """
        node_intervals: List[RankInterval] = []
        for rank in placement.ranks_on_node(node):
            node_intervals.extend(intervals[rank])
        cuts = [0.0, makespan]
        for iv in node_intervals:
            cuts.append(iv.t_start)
            cuts.append(iv.t_end)
        cut_list = _snap_cuts(np.array(cuts), makespan).tolist()
        starts: List[float] = []
        watts: List[float] = []
        cores = self.cluster.node.cores
        for t0, t1 in zip(cut_list, cut_list[1:]):
            mid = 0.5 * (t0 + t1)
            util = self._slice_utilization(node_intervals, mid, cores)
            starts.append(t0)
            watts.append(self.node_power.wall_power(util))
            parts = self.node_power.component_breakdown(util)
            for component, dc_watts in parts.items():
                breakdown[component] = breakdown.get(component, 0.0) + dc_watts * (t1 - t0)
            if capture is not None:
                capture.add_slice(t0, t1, node_row, watts[-1], parts)
        return np.array(starts), np.array(watts)

    @staticmethod
    def _slice_utilization(
        node_intervals: List[RankInterval], t: float, cores: int
    ) -> NodeUtilization:
        """Aggregate the demands of all ranks active on a node at time ``t``."""
        busy = 0
        intensity_sum = 0.0
        memory = storage = nic = accelerator = 0.0
        for iv in node_intervals:
            if iv.t_start - _EPS <= t < iv.t_end - _EPS:
                phase = iv.phase
                if phase.occupies_core:
                    busy += 1
                    intensity_sum += phase.cpu_intensity
                memory += phase.memory
                storage += phase.storage
                nic += phase.nic
                accelerator += phase.accelerator
        if busy == 0:
            return NodeUtilization.idle()
        return NodeUtilization(
            cpu_active_fraction=min(1.0, busy / cores),
            cpu_intensity=min(1.0, intensity_sum / busy),
            memory=min(1.0, memory),
            storage=min(1.0, storage),
            nic=min(1.0, nic),
            accelerator=min(1.0, accelerator),
        )
