"""Discrete-event engine: execute rank programs, resolving barriers.

The engine advances each rank through its phases on a shared virtual clock.
Phases have fixed durations (precomputed by the performance models), so the
only interaction between ranks is the barrier: a rank reaching a
:data:`~repro.sim.workload.PhaseKind.BARRIER` phase blocks until every rank
has reached the barrier with the same ordinal, then all proceed from the
latest arrival time.  Early arrivers get an explicit
:data:`~repro.sim.workload.PhaseKind.WAIT` interval (cores blocked in MPI
still burn their awake-floor power — see :mod:`repro.power.components`).

The output is, per rank, a gap-free list of :class:`RankInterval` from t=0
to that rank's completion.  Ranks may finish at different times; the run
ends at the latest completion.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence

from .. import telemetry as tele
from ..exceptions import SimulationError
from .workload import Phase, PhaseKind, RankProgram, WAIT_INTENSITY

__all__ = ["RankInterval", "SimulationEngine"]

#: Numerical slack when validating interval continuity.
_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class RankInterval:
    """One contiguous span of one rank's execution.

    ``slots=True`` because a 1k-rank run materializes hundreds of
    thousands of these; dropping the per-instance ``__dict__`` cuts both
    memory and attribute-access time in the integration hot loops.
    """

    rank: int
    t_start: float
    t_end: float
    phase: Phase

    @property
    def duration(self) -> float:
        """Seconds spanned."""
        return self.t_end - self.t_start


# Interned once: every barrier-wait interval across every rank shares this
# single Phase object instead of allocating one per wait.
_WAIT_PHASE = Phase(
    kind=PhaseKind.WAIT,
    duration_s=0.0,  # actual duration carried by the interval bounds
    cpu_intensity=WAIT_INTENSITY,
    label="barrier-wait",
)


class SimulationEngine:
    """Executes a set of rank programs (see module docstring)."""

    def __init__(self, programs: Sequence[RankProgram]):
        if not programs:
            raise SimulationError("need at least one rank program")
        ranks = sorted(p.rank for p in programs)
        if ranks != list(range(len(programs))):
            raise SimulationError(f"rank ids must be 0..{len(programs) - 1}, got {ranks}")
        barrier_counts = {p.barrier_count for p in programs}
        if len(barrier_counts) != 1:
            raise SimulationError(
                f"all ranks must have the same number of barriers, got {sorted(barrier_counts)}"
            )
        self._programs: Dict[int, RankProgram] = {p.rank: p for p in programs}
        self._num_ranks = len(programs)

    def run(self) -> List[List[RankInterval]]:
        """Execute and return per-rank interval lists (index = rank id).

        Implementation: an event queue keyed on (time, sequence number)
        drives rank progress; barriers collect arrivals and release all
        ranks at the max arrival time.
        """
        with tele.span("sim.engine.run", ranks=self._num_ranks) as trace:
            intervals = self._run()
            trace.set(intervals=sum(len(per_rank) for per_rank in intervals))
        return intervals

    def _run(self) -> List[List[RankInterval]]:
        intervals: List[List[RankInterval]] = [[] for _ in range(self._num_ranks)]
        # Per-rank cursor into its phase list and local clock.
        cursor = [0] * self._num_ranks
        clock = [0.0] * self._num_ranks
        # Barrier bookkeeping: ordinal -> list of (arrival_time, rank).
        barrier_arrivals: Dict[int, List] = {}
        barrier_ordinal = [0] * self._num_ranks

        counter = itertools.count()
        heap: List = [(0.0, next(counter), r) for r in range(self._num_ranks)]
        heapq.heapify(heap)
        blocked: Dict[int, float] = {}  # rank -> arrival time at its barrier

        while heap:
            t, _, rank = heapq.heappop(heap)
            program = self._programs[rank].phases
            i = cursor[rank]
            if i >= len(program):
                continue  # rank already finished
            phase = program[i]
            if phase.kind is PhaseKind.BARRIER:
                ordinal = barrier_ordinal[rank]
                barrier_ordinal[rank] += 1
                cursor[rank] += 1
                arrivals = barrier_arrivals.setdefault(ordinal, [])
                arrivals.append((t, rank))
                blocked[rank] = t
                if len(arrivals) == self._num_ranks:
                    release = max(at for at, _ in arrivals)
                    for at, r in arrivals:
                        if release > at + _EPS:
                            intervals[r].append(
                                RankInterval(rank=r, t_start=at, t_end=release, phase=_WAIT_PHASE)
                            )
                        clock[r] = release
                        del blocked[r]
                        heapq.heappush(heap, (release, next(counter), r))
                continue
            # Ordinary phase: record its interval and schedule its end.
            t_end = t + phase.duration_s
            if phase.duration_s > 0:
                intervals[rank].append(
                    RankInterval(rank=rank, t_start=t, t_end=t_end, phase=phase)
                )
            cursor[rank] += 1
            clock[rank] = t_end
            heapq.heappush(heap, (t_end, next(counter), rank))

        if blocked:
            stuck = sorted(blocked)
            raise SimulationError(
                f"deadlock: ranks {stuck} blocked at a barrier no other rank reaches"
            )
        self._validate_continuity(intervals)
        return intervals

    def makespan(self, intervals: List[List[RankInterval]]) -> float:
        """Completion time of the slowest rank."""
        return max((per_rank[-1].t_end if per_rank else 0.0) for per_rank in intervals)

    @staticmethod
    def _validate_continuity(intervals: List[List[RankInterval]]) -> None:
        for per_rank in intervals:
            t = 0.0
            for iv in per_rank:
                if iv.t_start < t - _EPS:
                    raise SimulationError(
                        f"overlapping intervals for rank {iv.rank} at t={iv.t_start}"
                    )
                if iv.t_start > t + _EPS:
                    raise SimulationError(
                        f"gap in rank {iv.rank}'s timeline at t={t}..{iv.t_start}"
                    )
                t = iv.t_end
