"""Discrete-event engine: execute rank programs, resolving barriers.

The engine advances each rank through its phases on a shared virtual clock.
Phases have fixed durations (precomputed by the performance models), so the
only interaction between ranks is the barrier: a rank reaching a
:data:`~repro.sim.workload.PhaseKind.BARRIER` phase blocks until every rank
has reached the barrier with the same ordinal, then all proceed from the
latest arrival time.  Early arrivers get an explicit
:data:`~repro.sim.workload.PhaseKind.WAIT` interval (cores blocked in MPI
still burn their awake-floor power — see :mod:`repro.power.components`).

The output is, per rank, a gap-free timeline from t=0 to that rank's
completion.  Ranks may finish at different times; the run ends at the
latest completion.

Engine implementations
----------------------

Two implementations coexist, selected by ``SimulationEngine(engine=...)``:

* ``engine="vectorized"`` (default) — a struct-of-arrays sweep.  Because
  every rank holds the same number of barriers (validated up front) and a
  barrier releases *all* ranks at the latest arrival, the schedule is
  computable segment-by-segment without an event heap: one flat pass
  extracts per-phase durations and segment ids, one cumulative sum yields
  every phase's offset inside its segment, one ``max`` per barrier column
  resolves the release times, and the barrier-wait intervals fall out of
  the arrival/release deltas in a single comparison.  The result is a
  columnar :class:`IntervalArrays` that feeds the executor's sweep-line
  power integrator directly — no per-interval Python objects on the fast
  path.
* ``engine="reference"`` — the original event-heap loop, kept as the
  independently simple oracle.  Property tests
  (``tests/test_engine_equivalence.py``) pin the two engines to
  interval-exact agreement.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from .. import telemetry as tele
from ..exceptions import SimulationError
from .workload import Phase, PhaseKind, RankProgram, WAIT_INTENSITY

__all__ = ["RankInterval", "IntervalArrays", "SimulationEngine"]

#: Numerical slack when validating interval continuity.
_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class RankInterval:
    """One contiguous span of one rank's execution.

    ``slots=True`` because a 1k-rank run materializes hundreds of
    thousands of these; dropping the per-instance ``__dict__`` cuts both
    memory and attribute-access time in the integration hot loops.
    """

    rank: int
    t_start: float
    t_end: float
    phase: Phase

    @property
    def duration(self) -> float:
        """Seconds spanned."""
        return self.t_end - self.t_start


# Interned once: every barrier-wait interval across every rank shares this
# single Phase object instead of allocating one per wait.
_WAIT_PHASE = Phase(
    kind=PhaseKind.WAIT,
    duration_s=0.0,  # actual duration carried by the interval bounds
    cpu_intensity=WAIT_INTENSITY,
    label="barrier-wait",
)


@dataclass
class IntervalArrays:
    """A run's intervals in columnar (struct-of-arrays) form.

    The vectorized engine emits this directly and the executor's
    sweep-line power integrator consumes it directly, so a 100k-rank run
    never materializes per-interval Python objects on the fast path.
    Phases are deduplicated by object identity into ``phases``;
    ``phase_row[i]`` is interval ``i``'s row in that table.

    Invariants (enforced by :meth:`validate`): intervals are sorted by
    ``(rank, t_start)`` and every rank's intervals tile ``[0, finish]``
    gap-free.
    """

    num_ranks: int
    rank: np.ndarray  #: (n,) intp — owning rank of each interval
    t_start: np.ndarray  #: (n,) float64
    t_end: np.ndarray  #: (n,) float64
    phase_row: np.ndarray  #: (n,) intp — row into :attr:`phases`
    phases: List[Phase]  #: unique Phase objects, deduplicated by identity
    makespan: float  #: completion time of the slowest rank

    def __len__(self) -> int:
        return self.rank.size

    @property
    def intensity(self) -> np.ndarray:
        """Per-interval CPU intensity, gathered through the phase table."""
        if not self.phases:
            return np.zeros(0)
        per_row = np.fromiter(
            (p.cpu_intensity for p in self.phases), float, len(self.phases)
        )
        return per_row[self.phase_row]

    def demand_table(self) -> np.ndarray:
        """``(len(phases), 6)`` demand vectors (see ``Phase.demand_vector``)."""
        if not self.phases:
            return np.zeros((0, 6))
        return np.asarray([p.demand_vector() for p in self.phases]).reshape(
            len(self.phases), 6
        )

    def counts_per_rank(self) -> np.ndarray:
        """Interval count per rank id."""
        return np.bincount(self.rank, minlength=self.num_ranks)

    # -- compatibility with the object form ----------------------------
    def to_interval_lists(self) -> List[List[RankInterval]]:
        """Materialize the per-rank ``RankInterval`` lists (the view every
        pre-columnar consumer expects)."""
        out: List[List[RankInterval]] = [[] for _ in range(self.num_ranks)]
        phases = self.phases
        for r, t0, t1, row in zip(
            self.rank.tolist(),
            self.t_start.tolist(),
            self.t_end.tolist(),
            self.phase_row.tolist(),
        ):
            out[r].append(RankInterval(rank=r, t_start=t0, t_end=t1, phase=phases[row]))
        return out

    @classmethod
    def from_interval_lists(
        cls,
        intervals: Sequence[Sequence[RankInterval]],
        *,
        makespan: Optional[float] = None,
    ) -> "IntervalArrays":
        """Flatten per-rank interval lists into columnar form."""
        flat = [iv for per_rank in intervals for iv in per_rank]
        n = len(flat)
        rank = np.fromiter((iv.rank for iv in flat), np.intp, n)
        t_start = np.fromiter((iv.t_start for iv in flat), float, n)
        t_end = np.fromiter((iv.t_end for iv in flat), float, n)
        phase_row = np.empty(n, dtype=np.intp)
        phases: List[Phase] = []
        row_of: Dict[int, int] = {}
        for k, iv in enumerate(flat):
            row = row_of.get(id(iv.phase))
            if row is None:
                row = len(phases)
                row_of[id(iv.phase)] = row
                phases.append(iv.phase)
            phase_row[k] = row
        if makespan is None:
            makespan = max(
                (per_rank[-1].t_end if per_rank else 0.0) for per_rank in intervals
            )
        return cls(
            num_ranks=len(intervals),
            rank=rank,
            t_start=t_start,
            t_end=t_end,
            phase_row=phase_row,
            phases=phases,
            makespan=makespan,
        )

    def validate(self) -> None:
        """Continuity validation on the columnar path.

        Mirrors the reference engine's per-rank scan: within each rank,
        every interval must start where the previous one ended (no gaps,
        no overlaps, first interval at t=0), to within ``_EPS``.
        """
        n = self.rank.size
        if n == 0:
            return
        first = np.empty(n, dtype=bool)
        first[0] = True
        np.not_equal(self.rank[1:], self.rank[:-1], out=first[1:])
        prev_end = np.empty(n)
        prev_end[first] = 0.0
        prev_end[1:][~first[1:]] = self.t_end[:-1][~first[1:]]
        overlap = self.t_start < prev_end - _EPS
        if overlap.any():
            k = int(np.argmax(overlap))
            raise SimulationError(
                f"overlapping intervals for rank {int(self.rank[k])} "
                f"at t={float(self.t_start[k])}"
            )
        gap = self.t_start > prev_end + _EPS
        if gap.any():
            k = int(np.argmax(gap))
            raise SimulationError(
                f"gap in rank {int(self.rank[k])}'s timeline at "
                f"t={float(prev_end[k])}..{float(self.t_start[k])}"
            )


class SimulationEngine:
    """Executes a set of rank programs (see module docstring).

    Parameters
    ----------
    programs:
        One :class:`~repro.sim.workload.RankProgram` per rank, with dense
        rank ids ``0..n-1`` and identical barrier counts.
    engine:
        ``"vectorized"`` (default) for the struct-of-arrays sweep or
        ``"reference"`` for the original event-heap oracle.  Both produce
        the same intervals; the property suite pins them to each other.
    """

    #: Valid engine implementations.
    ENGINE_MODES = ("vectorized", "reference")

    def __init__(self, programs: Sequence[RankProgram], *, engine: str = "vectorized"):
        if not programs:
            raise SimulationError("need at least one rank program")
        ranks = sorted(p.rank for p in programs)
        if ranks != list(range(len(programs))):
            raise SimulationError(f"rank ids must be 0..{len(programs) - 1}, got {ranks}")
        barrier_counts = {p.barrier_count for p in programs}
        if len(barrier_counts) != 1:
            raise SimulationError(
                f"all ranks must have the same number of barriers, got {sorted(barrier_counts)}"
            )
        if engine not in self.ENGINE_MODES:
            raise SimulationError(
                f"engine must be one of {self.ENGINE_MODES}, got {engine!r}"
            )
        self.engine = engine
        self._programs: Dict[int, RankProgram] = {p.rank: p for p in programs}
        self._num_ranks = len(programs)
        self._num_barriers = barrier_counts.pop()

    # ------------------------------------------------------------------
    def run(self) -> List[List[RankInterval]]:
        """Execute and return per-rank interval lists (index = rank id).

        Compatibility entry point: the vectorized engine computes the
        columnar form and materializes the view.  Fast-path consumers
        (the executor) use :meth:`run_arrays` instead.
        """
        with tele.span(
            "sim.engine.run", ranks=self._num_ranks, engine=self.engine
        ) as trace:
            if self.engine == "reference":
                intervals = self._run_reference()
                self._validate_continuity(intervals)
                trace.set(intervals=sum(len(per_rank) for per_rank in intervals))
                return intervals
            arrays = self._run_vectorized()
            trace.set(intervals=len(arrays))
            return arrays.to_interval_lists()

    def run_arrays(self) -> IntervalArrays:
        """Execute and return the columnar :class:`IntervalArrays`.

        The fast path: with ``engine="vectorized"`` no per-interval
        Python objects are created.  With ``engine="reference"`` the heap
        engine runs and its interval lists are flattened.
        """
        with tele.span(
            "sim.engine.run", ranks=self._num_ranks, engine=self.engine
        ) as trace:
            if self.engine == "reference":
                intervals = self._run_reference()
                self._validate_continuity(intervals)
                arrays = IntervalArrays.from_interval_lists(intervals)
            else:
                arrays = self._run_vectorized()
            trace.set(intervals=len(arrays))
        return arrays

    def makespan(
        self, intervals: Union[IntervalArrays, List[List[RankInterval]]]
    ) -> float:
        """Completion time of the slowest rank."""
        if isinstance(intervals, IntervalArrays):
            return intervals.makespan
        return max((per_rank[-1].t_end if per_rank else 0.0) for per_rank in intervals)

    # -- vectorized sweep ----------------------------------------------
    def _run_vectorized(self) -> IntervalArrays:
        """Struct-of-arrays sweep over barrier-separated segments.

        Barriers split every program into ``B+1`` segments.  Within a
        segment ranks run independently; at barrier ``s`` all ranks
        synchronize and restart from the latest arrival.  So the whole
        schedule is: per-(rank, segment) phase offsets (one cumulative
        sum), per-segment release times (one column max per barrier), and
        wait intervals wherever a rank's arrival trails the release.
        """
        num_ranks = self._num_ranks
        num_barriers = self._num_barriers

        # 1. One flat pass over the programs.  The only per-phase Python
        # work is the flattening list comprehension and an ``id()`` map:
        # object identities are deduplicated with a single ``np.unique``
        # and attributes are then read once per *unique* phase, so shared
        # phases cost nothing extra and a 500k-phase program stays in
        # bulk operations.  (``flat`` keeps every phase alive, so ids are
        # unique per object for the duration.)
        per_rank_phases = [self._programs[r].phases for r in range(num_ranks)]
        counts = np.fromiter(map(len, per_rank_phases), np.intp, num_ranks)
        flat = [phase for phases in per_rank_phases for phase in phases]
        total = len(flat)
        rank_all = np.repeat(np.arange(num_ranks, dtype=np.intp), counts)
        ids = np.fromiter(map(id, flat), np.int64, total)
        _, first_idx, inverse = np.unique(ids, return_index=True, return_inverse=True)
        table: List[Phase] = [flat[i] for i in first_idx]
        n_uniq = len(table)
        if n_uniq:
            barrier_u = np.fromiter(
                (p.kind is PhaseKind.BARRIER for p in table), bool, n_uniq
            )
            dur_u = np.fromiter((p.duration_s for p in table), float, n_uniq)
            barrier_all = barrier_u[inverse]
            dur_all = dur_u[inverse]
        else:
            barrier_all = np.zeros(0, dtype=bool)
            dur_all = np.zeros(0)
        # Segment ordinal = barriers seen so far in the owning program.
        # Every rank holds exactly `num_barriers` barriers (validated in
        # __init__), so the global running barrier count folds back to a
        # per-rank ordinal with one multiply.
        seg_all = np.cumsum(barrier_all) - barrier_all - num_barriers * rank_all
        keep_phase = ~barrier_all
        ph_rank = rank_all[keep_phase]
        ph_seg = seg_all[keep_phase].astype(np.intp, copy=False)
        ph_row = inverse[keep_phase].astype(np.intp, copy=False)
        dur = dur_all[keep_phase]
        n = dur.size

        # 2. Phase offsets inside their (rank, segment) group via one flat
        # cumulative sum.  The running prefix crosses group boundaries, so
        # group-local values are recovered by subtracting the prefix at
        # each group's start; extended precision keeps the reintroduced
        # rounding noise far below _EPS even when the flat stream sums to
        # ~1e7 s across 100k ranks (in float64 that ulp would rival _EPS
        # and could fabricate sliver waits between logically tied ranks).
        cs = np.cumsum(dur, dtype=np.longdouble)
        cse = np.concatenate([np.zeros(1, dtype=np.longdouble), cs[:-1]])
        new_group = np.empty(n, dtype=bool)
        if n:
            new_group[0] = True
            new_group[1:] = (ph_rank[1:] != ph_rank[:-1]) | (ph_seg[1:] != ph_seg[:-1])
        sid = np.maximum.accumulate(np.where(new_group, np.arange(n), 0))
        base = cse[sid] if n else cse[:0]
        local_start = cse[:n] - base  # exclusive prefix inside the group
        local_end = cs - base  # inclusive prefix inside the group

        # 3. Segment totals per (rank, segment) — the group's last
        # inclusive prefix — then the schedule: release of barrier s is
        # the latest arrival, i.e. segment start plus the column max.
        segtot = np.zeros((num_ranks, num_barriers + 1), dtype=np.longdouble)
        if n:
            last = np.empty(n, dtype=bool)
            last[:-1] = new_group[1:]
            last[-1] = True
            segtot[ph_rank[last], ph_seg[last]] = local_end[last]
        col_max = segtot.max(axis=0)
        seg_start = np.empty(num_barriers + 1, dtype=np.longdouble)
        seg_start[0] = 0.0
        if num_barriers:
            seg_start[1:] = np.cumsum(col_max[:num_barriers])
        makespan = float(seg_start[num_barriers] + col_max[num_barriers])

        # 4. Interval bounds.  Bounds are emitted as float64; consecutive
        # phases share the same prefix value and a segment's first phase
        # starts exactly at the previous release, so per-rank timelines
        # are continuity-exact by construction.
        keep = dur > 0.0  # zero-duration phases are legal no-ops
        p_rank = ph_rank[keep]
        p_seg = ph_seg[keep]
        p_row = ph_row[keep]
        p_pos = np.arange(n, dtype=np.intp)[keep]
        p_start = np.asarray(seg_start[p_seg] + local_start[keep], dtype=float)
        p_end = np.asarray(seg_start[p_seg] + local_end[keep], dtype=float)

        # 5. Barrier waits from the arrival/release deltas: rank r arrives
        # at barrier s at seg_start[s] + segtot[r, s]; the release is
        # seg_start[s+1].  The comparison runs on the emitted float64
        # values so the wait-emission rule matches the interval bounds.
        if num_barriers:
            arrive = np.asarray(
                seg_start[None, :num_barriers] + segtot[:, :num_barriers], dtype=float
            )
            release = np.asarray(seg_start[1:], dtype=float)
            w_rank, w_seg = np.nonzero(release[None, :] > arrive + _EPS)
            w_start = arrive[w_rank, w_seg]
            w_end = release[w_seg]
        else:
            w_rank = w_seg = np.zeros(0, dtype=np.intp)
            w_start = w_end = np.zeros(0)
        if w_rank.size:
            wait_row = len(table)
            table.append(_WAIT_PHASE)
        else:
            wait_row = 0

        # 6. Merge phases and waits into per-rank time order: within a
        # rank, segment-s phases (in program order), then the barrier-s
        # wait, then segment s+1.  The phase table is then compacted to
        # the rows the intervals actually reference (the full table still
        # holds barrier and zero-duration phases).
        a_rank = np.concatenate([p_rank, w_rank])
        a_seg = np.concatenate([p_seg, w_seg])
        a_wait = np.concatenate(
            [np.zeros(p_rank.size, dtype=np.intp), np.ones(w_rank.size, dtype=np.intp)]
        )
        a_pos = np.concatenate([p_pos, np.zeros(w_rank.size, dtype=np.intp)])
        order = np.lexsort((a_pos, a_wait, a_seg, a_rank))
        row_full = np.concatenate(
            [p_row, np.full(w_rank.size, wait_row, dtype=np.intp)]
        )[order]
        used_rows, phase_row = np.unique(row_full, return_inverse=True)
        arrays = IntervalArrays(
            num_ranks=num_ranks,
            rank=a_rank[order],
            t_start=np.concatenate([p_start, w_start])[order],
            t_end=np.concatenate([p_end, w_end])[order],
            phase_row=phase_row.astype(np.intp, copy=False),
            phases=[table[i] for i in used_rows],
            makespan=makespan,
        )
        arrays.validate()
        return arrays

    # -- reference event-heap oracle -----------------------------------
    def _run_reference(self) -> List[List[RankInterval]]:
        """The original event-heap loop, kept as the oracle.

        An event queue keyed on (time, sequence number) drives rank
        progress; barriers collect arrivals and release all ranks at the
        max arrival time.
        """
        intervals: List[List[RankInterval]] = [[] for _ in range(self._num_ranks)]
        # Per-rank cursor into its phase list and local clock.
        cursor = [0] * self._num_ranks
        clock = [0.0] * self._num_ranks
        # Barrier bookkeeping: ordinal -> list of (arrival_time, rank).
        barrier_arrivals: Dict[int, List] = {}
        barrier_ordinal = [0] * self._num_ranks

        counter = itertools.count()
        heap: List = [(0.0, next(counter), r) for r in range(self._num_ranks)]
        heapq.heapify(heap)
        blocked: Dict[int, float] = {}  # rank -> arrival time at its barrier

        while heap:
            t, _, rank = heapq.heappop(heap)
            program = self._programs[rank].phases
            i = cursor[rank]
            if i >= len(program):
                continue  # rank already finished
            phase = program[i]
            if phase.kind is PhaseKind.BARRIER:
                ordinal = barrier_ordinal[rank]
                barrier_ordinal[rank] += 1
                cursor[rank] += 1
                arrivals = barrier_arrivals.setdefault(ordinal, [])
                arrivals.append((t, rank))
                blocked[rank] = t
                if len(arrivals) == self._num_ranks:
                    release = max(at for at, _ in arrivals)
                    for at, r in arrivals:
                        if release > at + _EPS:
                            intervals[r].append(
                                RankInterval(rank=r, t_start=at, t_end=release, phase=_WAIT_PHASE)
                            )
                        clock[r] = release
                        del blocked[r]
                        heapq.heappush(heap, (release, next(counter), r))
                    # Released ordinals never collect another arrival;
                    # dropping them keeps barrier bookkeeping O(ranks)
                    # instead of O(ranks x barriers) over a long program.
                    del barrier_arrivals[ordinal]
                continue
            # Ordinary phase: record its interval and schedule its end.
            t_end = t + phase.duration_s
            if phase.duration_s > 0:
                intervals[rank].append(
                    RankInterval(rank=rank, t_start=t, t_end=t_end, phase=phase)
                )
            cursor[rank] += 1
            clock[rank] = t_end
            heapq.heappush(heap, (t_end, next(counter), rank))

        if blocked:
            stuck = sorted(blocked)
            raise SimulationError(
                f"deadlock: ranks {stuck} blocked at a barrier no other rank reaches"
            )
        return intervals

    @staticmethod
    def _validate_continuity(intervals: List[List[RankInterval]]) -> None:
        for per_rank in intervals:
            t = 0.0
            for iv in per_rank:
                if iv.t_start < t - _EPS:
                    raise SimulationError(
                        f"overlapping intervals for rank {iv.rank} at t={iv.t_start}"
                    )
                if iv.t_start > t + _EPS:
                    raise SimulationError(
                        f"gap in rank {iv.rank}'s timeline at t={t}..{iv.t_start}"
                    )
                t = iv.t_end
