"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SpecError",
    "PowerModelError",
    "MeterError",
    "SimulationError",
    "PlacementError",
    "BenchmarkError",
    "MetricError",
    "WeightError",
    "ReferenceMismatchError",
    "ExperimentError",
    "FleetError",
    "PerfWatchError",
    "JournalError",
    "TimelineError",
    "CampaignExecutionError",
    "FaultInjectionError",
    "InjectedFault",
    "TransientFault",
    "NodeCrashFault",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SpecError(ReproError):
    """A hardware specification (CPU, node, cluster, ...) is invalid."""


class PowerModelError(ReproError):
    """A power model was constructed with or evaluated at invalid values."""


class MeterError(ReproError):
    """A power meter was misconfigured or used incorrectly."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class PlacementError(SimulationError):
    """A process placement request cannot be satisfied by the cluster."""


class BenchmarkError(ReproError):
    """A benchmark was configured or executed incorrectly."""


class MetricError(ReproError):
    """A metric (EE, REE, TGI, EDP) computation received invalid inputs."""


class WeightError(MetricError):
    """A weighting scheme is invalid (e.g. weights do not sum to one)."""


class ReferenceMismatchError(MetricError):
    """Suite results and reference results do not cover the same benchmarks."""


class ExperimentError(ReproError):
    """An experiment driver was invoked with an unknown id or bad config."""


class FleetError(ReproError):
    """Raised by the batched fleet-evaluation layer (:mod:`repro.fleet`)."""


class PerfWatchError(ReproError):
    """A perf-watch scenario, record, or history store is invalid."""


class JournalError(ReproError):
    """A run journal event, file, or writer is invalid or unusable."""


class TimelineError(ReproError):
    """A power-timeline capture, artifact, or dashboard input is invalid."""


class CampaignExecutionError(ReproError):
    """One or more campaign jobs failed and the policy said to abort.

    ``failures`` holds one ``{"job_id", "error"}`` dict per failed job so
    callers (and the CLI) can report what went wrong without parsing the
    message string.
    """

    def __init__(self, message: str, *, failures=None):
        super().__init__(message)
        self.failures = list(failures or [])


class FaultInjectionError(ReproError):
    """A fault plan or injector was configured with invalid values."""


class InjectedFault(ReproError):
    """Base class for deterministically injected faults (never raised raw)."""


class TransientFault(InjectedFault):
    """An injected transient job failure (clears on retry once exhausted)."""


class NodeCrashFault(InjectedFault):
    """An injected node crash partway through a simulated run."""
