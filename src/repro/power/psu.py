"""Power-supply efficiency model.

The wall-plug meter in the paper measures *AC* power; the components draw
*DC*.  A PSU's efficiency depends on its load fraction — poor at very light
load, peaking around 50 %, sagging slightly toward 100 % — which matters
here because an idle cluster sits in the inefficient left part of the curve.

:class:`PSUModel` interpolates a measured (load-fraction, efficiency) curve;
the default points follow a typical non-80-PLUS server supply of the era
modelled.  :data:`IDEAL_PSU` (efficiency 1 everywhere) is provided for
ablations isolating the PSU's contribution to wall power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..exceptions import PowerModelError
from ..validation import check_positive

__all__ = ["PSUModel", "DEFAULT_EFFICIENCY_CURVE", "IDEAL_PSU"]

#: (load fraction, efficiency) points for a typical late-2000s server PSU.
DEFAULT_EFFICIENCY_CURVE: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.60),
    (0.10, 0.75),
    (0.20, 0.83),
    (0.50, 0.87),
    (0.80, 0.86),
    (1.00, 0.84),
)


@dataclass(frozen=True)
class PSUModel:
    """Load-dependent AC->DC conversion.

    Parameters
    ----------
    rated_watts:
        DC output the supply is rated for.  Node load fraction is
        ``dc_watts / rated_watts`` (clamped to [0, 1] — drawing beyond the
        rating is treated as full load rather than an error because the
        models occasionally overshoot nominal ceilings by a watt or two).
    curve:
        Monotone-in-load (load_fraction, efficiency) pairs; efficiency is
        linearly interpolated between points.
    """

    rated_watts: float
    curve: Tuple[Tuple[float, float], ...] = DEFAULT_EFFICIENCY_CURVE

    def __post_init__(self) -> None:
        check_positive(self.rated_watts, "rated_watts", exc=PowerModelError)
        if len(self.curve) < 2:
            raise PowerModelError("efficiency curve needs at least 2 points")
        loads = [p[0] for p in self.curve]
        effs = [p[1] for p in self.curve]
        if loads != sorted(loads):
            raise PowerModelError("efficiency curve loads must be sorted ascending")
        if loads[0] != 0.0 or loads[-1] != 1.0:
            raise PowerModelError("efficiency curve must span load fractions 0..1")
        for eff in effs:
            if not 0 < eff <= 1:
                raise PowerModelError(f"efficiency {eff} outside (0, 1]")
        # Cache the interpolation grid once: efficiency() sits on the hot
        # power-integration path and must not rebuild arrays per call.
        object.__setattr__(self, "_loads", np.array(loads, dtype=float))
        object.__setattr__(self, "_effs", np.array(effs, dtype=float))

    def efficiency(self, dc_watts: float) -> float:
        """Conversion efficiency at the given DC draw."""
        if dc_watts < 0:
            raise PowerModelError(f"dc_watts must be >= 0, got {dc_watts}")
        load = min(dc_watts / self.rated_watts, 1.0)
        return float(np.interp(load, self._loads, self._effs))

    def wall_watts(self, dc_watts: float) -> float:
        """AC power drawn from the outlet for the given DC load."""
        if dc_watts == 0:
            return 0.0
        return dc_watts / self.efficiency(dc_watts)

    def efficiency_many(self, dc_watts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`efficiency` over an array of DC draws."""
        dc = np.asarray(dc_watts, dtype=float)
        if dc.size and dc.min() < 0:
            raise PowerModelError("dc_watts must be >= 0")
        load = np.minimum(dc / self.rated_watts, 1.0)
        return np.interp(load, self._loads, self._effs)

    def wall_watts_many(self, dc_watts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`wall_watts`: one division per timeline slice.

        Elementwise identical to the scalar method — same clamp, same
        interpolation grid, and the ``dc == 0 -> 0`` short-circuit is
        applied as a mask after the division.
        """
        dc = np.asarray(dc_watts, dtype=float)
        watts = dc / self.efficiency_many(dc)
        if dc.size:
            watts[dc == 0.0] = 0.0
        return watts


#: Lossless supply for ablation studies.
IDEAL_PSU = PSUModel(rated_watts=1.0, curve=((0.0, 1.0), (1.0, 1.0)))
