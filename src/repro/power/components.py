"""Component-level power models: utilization in, watts out.

Each model maps a component's specification plus an instantaneous
utilization to DC power draw.  The models are deliberately simple
(linear-in-utilization between a measured idle floor and a measured
full-load ceiling, with a CPU refinement described below) because the paper's
metric consumes *whole-system wall power*; what matters for reproducing its
curves is that the floors and ceilings are right and that partially-loaded
nodes land in between monotonically.

CPU refinement: a core that is awake but stalled (e.g. running STREAM,
waiting on DRAM) still burns clock-tree and leakage power.  The model
therefore splits the per-core dynamic range into an *awake floor*
(:attr:`CPUPowerModel.awake_floor`) paid by any busy core, plus an
intensity-proportional remainder — so compute-bound HPL draws close to TDP
while memory-bound STREAM draws noticeably less at the same core count,
matching the power gap the paper observes between its benchmarks.

Batched evaluation: every model also exposes ``power_many``, which takes a
:class:`NodeUtilizationArray` (struct-of-arrays: one ndarray per utilization
field) and returns watts per timeline slice in one NumPy expression.  The
formulas are written with the exact same operation order as the scalar
``power`` methods, so a batched evaluation is bitwise identical to mapping
the scalar model over the slices — the sweep-line integrator in
:mod:`repro.sim.executor` relies on this to stay equivalent to its scalar
reference oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..cluster.accelerator import AcceleratorSpec
from ..cluster.cpu import CPUSpec
from ..cluster.memory import MemorySpec
from ..cluster.nic import InterconnectSpec
from ..cluster.storage import StorageSpec
from ..exceptions import PowerModelError
from ..validation import check_fraction

__all__ = [
    "NodeUtilization",
    "NodeUtilizationArray",
    "CPUPowerModel",
    "MemoryPowerModel",
    "StoragePowerModel",
    "NICPowerModel",
    "AcceleratorPowerModel",
]


@dataclass(frozen=True)
class NodeUtilization:
    """Instantaneous utilization of one node's components.

    All fields are fractions in [0, 1].

    Attributes
    ----------
    cpu_active_fraction:
        Fraction of the node's cores that are busy (running a rank).
    cpu_intensity:
        How power-hungry the busy cores' work is: ~1.0 for dense compute
        (HPL), ~0.6 for bandwidth-bound code (STREAM), ~0.15 for cores
        blocked on I/O or messages.
    memory:
        Fraction of sustained memory bandwidth in use.
    storage:
        Fraction of disk bandwidth in use.
    nic:
        Fraction of link bandwidth in use.
    accelerator:
        Fraction of accelerator throughput in use (extension systems).
    """

    cpu_active_fraction: float = 0.0
    cpu_intensity: float = 0.0
    memory: float = 0.0
    storage: float = 0.0
    nic: float = 0.0
    accelerator: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "cpu_active_fraction",
            "cpu_intensity",
            "memory",
            "storage",
            "nic",
            "accelerator",
        ):
            check_fraction(getattr(self, name), name, exc=PowerModelError)

    @classmethod
    def idle(cls) -> "NodeUtilization":
        """A fully idle node."""
        return cls()


@dataclass(frozen=True, eq=False)  # ndarray fields: identity equality only
class NodeUtilizationArray:
    """A whole utilization timeline as struct-of-arrays.

    Field-for-field the batched counterpart of :class:`NodeUtilization`:
    each attribute is a 1-D float array with one entry per timeline slice.
    Instances are produced by trusted code (the sweep-line integrator), so
    construction validates shape agreement but not per-element ranges —
    the producers clamp to [0, 1] themselves.
    """

    cpu_active_fraction: np.ndarray
    cpu_intensity: np.ndarray
    memory: np.ndarray
    storage: np.ndarray
    nic: np.ndarray
    accelerator: np.ndarray

    _FIELDS = (
        "cpu_active_fraction",
        "cpu_intensity",
        "memory",
        "storage",
        "nic",
        "accelerator",
    )

    def __post_init__(self) -> None:
        shapes = {getattr(self, name).shape for name in self._FIELDS}
        if len(shapes) != 1 or next(iter(shapes)) != (len(self),):
            raise PowerModelError(
                f"utilization arrays must share one 1-D shape, got {sorted(shapes)}"
            )

    def __len__(self) -> int:
        return int(np.asarray(self.cpu_active_fraction).shape[0])

    @classmethod
    def idle(cls, n: int) -> "NodeUtilizationArray":
        """``n`` fully idle slices."""
        zeros = np.zeros(n)
        return cls(zeros, zeros, zeros, zeros, zeros, zeros)

    @classmethod
    def from_utilizations(cls, utils: Sequence[NodeUtilization]) -> "NodeUtilizationArray":
        """Pack scalar utilizations into one batch (tests, adapters)."""
        return cls(
            *(
                np.array([getattr(u, name) for u in utils], dtype=float)
                for name in cls._FIELDS
            )
        )

    def at(self, i: int) -> NodeUtilization:
        """The scalar :class:`NodeUtilization` of slice ``i``."""
        return NodeUtilization(
            **{name: float(getattr(self, name)[i]) for name in self._FIELDS}
        )


def _linear(idle_w: float, active_w: float, util):
    """Linear interpolation between a component's idle and active power.

    ``util`` may be a scalar or an ndarray; the expression is elementwise
    either way, which keeps the scalar and batched paths bitwise equal.
    """
    return idle_w + (active_w - idle_w) * util


@dataclass(frozen=True)
class CPUPowerModel:
    """Power of all CPU packages in a node.

    ``P = sockets * (idle + (tdp - idle) * active * (floor + (1-floor) * intensity))``

    where ``active`` is the fraction of busy cores and ``floor`` the awake
    floor described in the module docstring.
    """

    spec: CPUSpec
    sockets: int
    awake_floor: float = 0.45

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise PowerModelError(f"sockets must be >= 1, got {self.sockets}")
        check_fraction(self.awake_floor, "awake_floor", exc=PowerModelError)

    def power(self, util: NodeUtilization) -> float:
        """DC watts for the given utilization."""
        dynamic_range = self.spec.tdp_watts - self.spec.idle_watts
        per_core_load = self.awake_floor + (1.0 - self.awake_floor) * util.cpu_intensity
        package = self.spec.idle_watts + dynamic_range * util.cpu_active_fraction * per_core_load
        return self.sockets * package

    def power_many(self, util: NodeUtilizationArray) -> np.ndarray:
        """DC watts per timeline slice (same operation order as :meth:`power`)."""
        dynamic_range = self.spec.tdp_watts - self.spec.idle_watts
        per_core_load = self.awake_floor + (1.0 - self.awake_floor) * util.cpu_intensity
        package = self.spec.idle_watts + dynamic_range * util.cpu_active_fraction * per_core_load
        return self.sockets * package


@dataclass(frozen=True)
class MemoryPowerModel:
    """Power of all DIMMs in a node (linear in bandwidth utilization)."""

    spec: MemorySpec
    sockets: int

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise PowerModelError(f"sockets must be >= 1, got {self.sockets}")

    def power(self, util: NodeUtilization) -> float:
        """DC watts for the given utilization."""
        return self.sockets * _linear(self.spec.idle_watts, self.spec.active_watts, util.memory)

    def power_many(self, util: NodeUtilizationArray) -> np.ndarray:
        """DC watts per timeline slice."""
        return self.sockets * _linear(self.spec.idle_watts, self.spec.active_watts, util.memory)


@dataclass(frozen=True)
class StoragePowerModel:
    """Power of the node's local storage device."""

    spec: StorageSpec

    def power(self, util: NodeUtilization) -> float:
        """DC watts for the given utilization."""
        return _linear(self.spec.idle_watts, self.spec.active_watts, util.storage)

    def power_many(self, util: NodeUtilizationArray) -> np.ndarray:
        """DC watts per timeline slice."""
        return _linear(self.spec.idle_watts, self.spec.active_watts, util.storage)


@dataclass(frozen=True)
class NICPowerModel:
    """Power of the node's network adapter."""

    spec: InterconnectSpec

    def power(self, util: NodeUtilization) -> float:
        """DC watts for the given utilization."""
        return _linear(self.spec.idle_watts, self.spec.active_watts, util.nic)

    def power_many(self, util: NodeUtilizationArray) -> np.ndarray:
        """DC watts per timeline slice."""
        return _linear(self.spec.idle_watts, self.spec.active_watts, util.nic)


@dataclass(frozen=True)
class AcceleratorPowerModel:
    """Power of one accelerator card (linear between idle and TDP)."""

    spec: AcceleratorSpec

    def power(self, util: NodeUtilization) -> float:
        """DC watts for the given utilization."""
        return _linear(self.spec.idle_watts, self.spec.tdp_watts, util.accelerator)

    def power_many(self, util: NodeUtilizationArray) -> np.ndarray:
        """DC watts per timeline slice."""
        return _linear(self.spec.idle_watts, self.spec.tdp_watts, util.accelerator)
