"""Cooling / facility power models — the paper's "centre-wide TGI" extension.

Section VI proposes extending TGI "to give a center-wide view of the energy
efficiency by including components such as cooling infrastructure".  These
models convert IT (wall) power into facility power so the same TGI pipeline
can be run at the facility boundary (see ``examples/center_wide_tgi.py``):

* :class:`FixedPUECooling` — facility power = PUE x IT power, the standard
  data-centre accounting;
* :class:`COPCooling` — facility power = IT x (1 + 1/COP) + fixed overhead,
  a chiller-oriented model where the coefficient of performance says how
  many watts of heat one watt of cooling removes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..exceptions import PowerModelError
from ..validation import check_non_negative, check_positive
from .trace import PiecewisePower

__all__ = ["CoolingModel", "FixedPUECooling", "COPCooling"]


class CoolingModel(abc.ABC):
    """Maps IT wall power to facility power (IT + cooling + distribution)."""

    @abc.abstractmethod
    def facility_watts(self, it_watts: float) -> float:
        """Facility watts for a given IT draw."""

    def apply(self, it_power: PiecewisePower) -> PiecewisePower:
        """Lift a whole IT power curve to the facility boundary."""
        return PiecewisePower(
            [(t0, t1, self.facility_watts(w)) for t0, t1, w in it_power.segments]
        )


@dataclass(frozen=True)
class FixedPUECooling(CoolingModel):
    """Facility power = PUE x IT power.

    A PUE of 1.0 is a facility with free cooling and lossless distribution;
    2.0 was typical of machine rooms in the paper's era.
    """

    pue: float = 1.7

    def __post_init__(self) -> None:
        check_positive(self.pue, "pue", exc=PowerModelError)
        if self.pue < 1.0:
            raise PowerModelError(f"PUE must be >= 1, got {self.pue}")

    def facility_watts(self, it_watts: float) -> float:
        check_non_negative(it_watts, "it_watts", exc=PowerModelError)
        return self.pue * it_watts


@dataclass(frozen=True)
class COPCooling(CoolingModel):
    """Chiller model: cooling power = heat / COP, plus fixed overhead.

    Parameters
    ----------
    cop:
        Coefficient of performance of the chiller plant (watts of heat
        removed per watt of cooling power); 3-5 is typical.
    overhead_watts:
        Load-independent facility overhead (lighting, UPS losses, pumps).
    """

    cop: float = 3.5
    overhead_watts: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.cop, "cop", exc=PowerModelError)
        check_non_negative(self.overhead_watts, "overhead_watts", exc=PowerModelError)

    def facility_watts(self, it_watts: float) -> float:
        check_non_negative(it_watts, "it_watts", exc=PowerModelError)
        return it_watts * (1.0 + 1.0 / self.cop) + self.overhead_watts

    def effective_pue(self, it_watts: float) -> float:
        """The PUE this model exhibits at a given IT load."""
        check_positive(it_watts, "it_watts", exc=PowerModelError)
        return self.facility_watts(it_watts) / it_watts
