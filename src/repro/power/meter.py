"""Wall-plug power-meter model (the paper's Watts Up? PRO ES).

The paper measures energy by placing a Watts Up? PRO ES between the power
outlet and the system (Figure 1) and integrating its log.  The meter's
datasheet behaviour is modelled here:

* fixed-rate sampling (1 Hz for the PRO ES);
* a per-instrument gain error (the "+/- 1.5 %" spec), drawn once per meter
  from a seeded stream and then held — real gain error is a property of the
  unit, not of each sample;
* additive sample noise (the "+/- 3 counts" spec, 0.1 W per count);
* quantization to the display resolution (0.1 W).

:meth:`WallPlugMeter.measure` samples a :class:`~repro.power.trace.PiecewisePower`
ground truth into a :class:`~repro.power.trace.PowerTrace`, so every energy
number the benchmarks report has passed through the same measurement
pipeline as the paper's.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..exceptions import MeterError
from ..rng import RandomState, child_rng
from ..validation import check_non_negative, check_positive
from .trace import PiecewisePower, PowerTrace

__all__ = ["MeterSpec", "WallPlugMeter", "WATTS_UP_PRO", "PERFECT_METER"]


@dataclass(frozen=True)
class MeterSpec:
    """Datasheet parameters of a wall-plug meter.

    Parameters
    ----------
    name:
        Instrument name.
    sample_interval_s:
        Seconds between samples.
    gain_error_fraction:
        Maximum relative gain error; the realized gain is drawn uniformly in
        ``[-g, +g]`` once per instrument.
    noise_counts:
        Additive sample noise amplitude in display counts (uniform).
    resolution_watts:
        Display resolution (one count).
    max_watts:
        Clipping ceiling of the instrument (the PRO ES tops out at ~1.8 kW;
        metering a large cluster requires one meter per circuit, modelled by
        summing node wall power before the instrument — set this high when
        modelling a logical "sum of meters").
    dropout_probability:
        Chance of any individual sample being lost (USB loggers drop
        records under host load).  The trace simply lacks those
        timestamps; trapezoidal integration bridges the gaps, which is
        exactly what post-processing a real log does.
    """

    name: str
    sample_interval_s: float = 1.0
    gain_error_fraction: float = 0.015
    noise_counts: float = 3.0
    resolution_watts: float = 0.1
    max_watts: float = float("inf")
    dropout_probability: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise MeterError("meter name must be non-empty")
        check_positive(self.sample_interval_s, "sample_interval_s", exc=MeterError)
        check_non_negative(self.gain_error_fraction, "gain_error_fraction", exc=MeterError)
        check_non_negative(self.noise_counts, "noise_counts", exc=MeterError)
        check_positive(self.resolution_watts, "resolution_watts", exc=MeterError)
        if not self.max_watts > 0:  # inf is a valid (uncapped) ceiling
            raise MeterError(f"max_watts must be > 0, got {self.max_watts!r}")
        if not 0.0 <= self.dropout_probability < 1.0:
            raise MeterError(
                f"dropout_probability must be in [0, 1), got {self.dropout_probability!r}"
            )

    def with_dropout(self, probability: float) -> "MeterSpec":
        """The same instrument losing each sample with ``probability``.

        Used by fault injection to degrade a meter without re-stating the
        rest of its datasheet; validation runs again on the copy.
        """
        return dataclasses.replace(self, dropout_probability=probability)


#: The instrument used in the paper, with an uncapped range so a single
#: logical meter can stand in for the per-circuit bank metering a cluster.
WATTS_UP_PRO = MeterSpec(name="Watts Up? PRO ES")

#: An error-free, infinitely fine meter for ablations.
PERFECT_METER = MeterSpec(
    name="ideal meter",
    sample_interval_s=0.1,
    gain_error_fraction=0.0,
    noise_counts=0.0,
    resolution_watts=1e-9,
)


class WallPlugMeter:
    """One metering instrument with a realized gain error.

    Parameters
    ----------
    spec:
        Datasheet parameters.
    rng:
        Seed or generator; the instrument's gain error and its sample-noise
        stream derive from it, so two meters built from the same seed read
        identically.
    """

    def __init__(self, spec: MeterSpec = WATTS_UP_PRO, *, rng: RandomState = None):
        self.spec = spec
        gain_rng = child_rng(rng, f"meter-gain:{spec.name}")
        self._gain = 1.0 + gain_rng.uniform(
            -spec.gain_error_fraction, spec.gain_error_fraction
        )
        self._noise_rng = child_rng(rng, f"meter-noise:{spec.name}")

    @property
    def realized_gain(self) -> float:
        """The instrument's realized multiplicative gain (close to 1)."""
        return float(self._gain)

    def measure(self, truth: PiecewisePower) -> PowerTrace:
        """Sample a ground-truth power curve into a meter log.

        Samples land at the middle of each sampling interval (the instrument
        integrates over its update period), starting at ``t_start``.  A run
        shorter than one interval still yields a single sample so that very
        quick benchmarks remain measurable — matching practice, where one
        reads the instantaneous display.
        """
        dt = self.spec.sample_interval_s
        n = max(1, int(np.floor(truth.duration / dt)))
        times = truth.t_start + (np.arange(n) + 0.5) * dt
        # Float noise can push only the *last* mid-interval sample past the
        # covered range; trim by bisection instead of a full boolean scan.
        end = truth.t_start + truth.duration
        times = times[: int(np.searchsorted(times, end, side="right"))]
        if times.size == 0:
            times = np.array([truth.t_start + truth.duration / 2.0])
        # One searchsorted prices every sample against the (compacted)
        # truth curve; noise, clipping, and quantization are elementwise.
        true_watts = truth.power_at_many(times)
        noise = self._noise_rng.uniform(
            -self.spec.noise_counts, self.spec.noise_counts, size=times.size
        ) * self.spec.resolution_watts
        read = true_watts * self._gain + noise
        read = np.clip(read, 0.0, self.spec.max_watts)
        quantized = np.round(read / self.spec.resolution_watts) * self.spec.resolution_watts
        if self.spec.dropout_probability > 0 and times.size > 1:
            kept = self._noise_rng.random(times.size) >= self.spec.dropout_probability
            kept[0] = True  # a log always has its first record
            times = times[kept]
            quantized = quantized[kept]
        return PowerTrace(times, quantized)

    def __repr__(self) -> str:
        return f"WallPlugMeter({self.spec.name}, gain={self._gain:.4f})"
