"""Dynamic voltage/frequency scaling model (extension).

The paper's systems run at fixed nominal frequency, but weight/sensitivity
studies benefit from being able to ask "what would TGI look like if the
system under test were clocked down?".  :class:`DVFSModel` derives scaled
:class:`~repro.cluster.cpu.CPUSpec` instances using the classic CMOS scaling
``P_dynamic ~ f * V^2`` with idle power scaled by ``V^2`` only (leakage
tracks voltage, not clock).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..cluster.cpu import CPUSpec
from ..exceptions import PowerModelError
from ..validation import check_positive

__all__ = ["DVFSOperatingPoint", "DVFSModel"]


@dataclass(frozen=True)
class DVFSOperatingPoint:
    """One (frequency, voltage) P-state."""

    frequency_hz: float
    voltage_v: float

    def __post_init__(self) -> None:
        check_positive(self.frequency_hz, "frequency_hz", exc=PowerModelError)
        check_positive(self.voltage_v, "voltage_v", exc=PowerModelError)


@dataclass(frozen=True)
class DVFSModel:
    """A CPU's ladder of P-states, highest frequency first.

    Parameters
    ----------
    nominal:
        The P-state at which the base :class:`CPUSpec` numbers were taken.
    points:
        All available operating points (must include one matching
        ``nominal``'s frequency).
    """

    nominal: DVFSOperatingPoint
    points: Tuple[DVFSOperatingPoint, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise PowerModelError("DVFSModel needs at least one operating point")
        freqs = [p.frequency_hz for p in self.points]
        if sorted(freqs, reverse=True) != freqs:
            raise PowerModelError("operating points must be ordered by descending frequency")
        if not any(abs(p.frequency_hz - self.nominal.frequency_hz) < 1 for p in self.points):
            raise PowerModelError("nominal frequency must be among the operating points")

    def dynamic_power_scale(self, point: DVFSOperatingPoint) -> float:
        """``(f/f0) * (V/V0)^2`` relative to nominal."""
        return (
            (point.frequency_hz / self.nominal.frequency_hz)
            * (point.voltage_v / self.nominal.voltage_v) ** 2
        )

    def static_power_scale(self, point: DVFSOperatingPoint) -> float:
        """``(V/V0)^2`` relative to nominal (leakage follows voltage)."""
        return (point.voltage_v / self.nominal.voltage_v) ** 2

    def scale_cpu(self, cpu: CPUSpec, point: DVFSOperatingPoint) -> CPUSpec:
        """A :class:`CPUSpec` re-rated at the given operating point.

        The dynamic portion (TDP minus idle) scales with ``f * V^2``; the
        idle floor scales with ``V^2``; the clock scales directly, which also
        rescales peak FLOP/s.
        """
        if point not in self.points:
            raise PowerModelError(f"{point} is not an operating point of this model")
        dyn = (cpu.tdp_watts - cpu.idle_watts) * self.dynamic_power_scale(point)
        idle = cpu.idle_watts * self.static_power_scale(point)
        return replace(
            cpu,
            base_clock_hz=point.frequency_hz,
            tdp_watts=idle + dyn,
            idle_watts=idle,
        )
