"""Power substrate: utilization -> watts -> metered energy.

The chain mirrors the paper's measurement setup (Figure 1):

1. A benchmark run produces, per node, a piecewise-constant timeline of
   component utilizations (:class:`~repro.power.components.NodeUtilization`).
2. :class:`~repro.power.node_power.NodePowerModel` converts utilization to DC
   watts per node from component models (CPU, DRAM, disk, NIC, accelerator).
3. :class:`~repro.power.psu.PSUModel` converts DC watts to wall (AC) watts
   through a load-dependent efficiency curve.
4. :class:`~repro.power.meter.WallPlugMeter` — a model of the Watts Up? PRO
   ES used in the paper — samples the aggregate wall power at 1 Hz with gain
   error and quantization, producing a :class:`~repro.power.trace.PowerTrace`.
5. Energy is the trapezoidal integral of the trace, exactly as one computes
   it from a real meter log.
"""

from .components import (
    NodeUtilization,
    NodeUtilizationArray,
    CPUPowerModel,
    MemoryPowerModel,
    StoragePowerModel,
    NICPowerModel,
    AcceleratorPowerModel,
)
from .node_power import NodePowerModel
from .psu import PSUModel, IDEAL_PSU
from .trace import PowerTrace, PiecewisePower
from .meter import WallPlugMeter, MeterSpec, WATTS_UP_PRO
from .energy import energy_delay_product, average_power, energy_to_solution
from .cooling import CoolingModel, FixedPUECooling, COPCooling
from .dvfs import DVFSOperatingPoint, DVFSModel

__all__ = [
    "NodeUtilization",
    "NodeUtilizationArray",
    "CPUPowerModel",
    "MemoryPowerModel",
    "StoragePowerModel",
    "NICPowerModel",
    "AcceleratorPowerModel",
    "NodePowerModel",
    "PSUModel",
    "IDEAL_PSU",
    "PowerTrace",
    "PiecewisePower",
    "WallPlugMeter",
    "MeterSpec",
    "WATTS_UP_PRO",
    "energy_delay_product",
    "average_power",
    "energy_to_solution",
    "CoolingModel",
    "FixedPUECooling",
    "COPCooling",
    "DVFSOperatingPoint",
    "DVFSModel",
]
