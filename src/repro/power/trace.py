"""Power time series: the exact (piecewise-constant) truth and sampled traces.

Two representations:

* :class:`PiecewisePower` — the simulator's ground truth: wall power as a
  piecewise-constant function of time.  Its energy integral is exact.
* :class:`PowerTrace` — what a meter produces: (timestamp, watts) samples.
  Its energy is the trapezoidal integral, exactly the arithmetic one applies
  to a real Watts Up? log file.

Keeping both lets tests quantify the measurement error the paper's
methodology inherits from 1 Hz wall-plug metering (see
``benchmarks/bench_ablation_meter.py``).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..exceptions import PowerModelError
from ..units import format_energy, format_power, format_time

__all__ = ["PiecewisePower", "PowerTrace"]


class PiecewisePower:
    """Piecewise-constant wall power over ``[0, duration]``.

    Built from ``(t_start, t_end, watts)`` segments that must tile the
    interval without gaps or overlaps (zero-length segments are dropped).
    """

    def __init__(self, segments: Iterable[Tuple[float, float, float]]):
        cleaned: List[Tuple[float, float, float]] = []
        for t0, t1, w in segments:
            if t1 < t0:
                raise PowerModelError(f"segment ends before it starts: ({t0}, {t1})")
            if w < 0:
                raise PowerModelError(f"negative power {w} in segment ({t0}, {t1})")
            if t1 > t0:
                cleaned.append((float(t0), float(t1), float(w)))
        cleaned.sort(key=lambda s: s[0])
        if not cleaned:
            raise PowerModelError("PiecewisePower needs at least one non-empty segment")
        for prev, cur in zip(cleaned, cleaned[1:]):
            if abs(prev[1] - cur[0]) > 1e-9:
                raise PowerModelError(
                    f"segments must tile time: gap/overlap between t={prev[1]} and t={cur[0]}"
                )
        self._starts = np.array([s[0] for s in cleaned])
        self._ends = np.array([s[1] for s in cleaned])
        self._watts = np.array([s[2] for s in cleaned])

    @property
    def t_start(self) -> float:
        """Start of the covered interval."""
        return float(self._starts[0])

    @property
    def starts_array(self) -> np.ndarray:
        """Segment start times (read-only view)."""
        view = self._starts.view()
        view.flags.writeable = False
        return view

    @property
    def ends_array(self) -> np.ndarray:
        """Segment end times (read-only view)."""
        view = self._ends.view()
        view.flags.writeable = False
        return view

    @property
    def watts_array(self) -> np.ndarray:
        """Segment watts (read-only view)."""
        view = self._watts.view()
        view.flags.writeable = False
        return view

    @property
    def duration(self) -> float:
        """Length of the covered interval in seconds."""
        return float(self._ends[-1] - self._starts[0])

    @property
    def segments(self) -> List[Tuple[float, float, float]]:
        """The (t_start, t_end, watts) segments."""
        return list(zip(self._starts.tolist(), self._ends.tolist(), self._watts.tolist()))

    def power_at(self, t: float) -> float:
        """Wall watts at time ``t`` (right-continuous; endpoint included)."""
        if t < self._starts[0] - 1e-12 or t > self._ends[-1] + 1e-12:
            raise PowerModelError(
                f"t={t} outside covered interval [{self._starts[0]}, {self._ends[-1]}]"
            )
        idx = int(np.searchsorted(self._ends, t, side="left"))
        idx = min(idx, len(self._watts) - 1)
        return float(self._watts[idx])

    def power_at_many(self, times: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`power_at`."""
        times = np.asarray(times, dtype=float)
        if times.size == 0:
            return np.empty(0)
        if times.min() < self._starts[0] - 1e-12 or times.max() > self._ends[-1] + 1e-12:
            raise PowerModelError("sample times outside covered interval")
        idx = np.searchsorted(self._ends, times, side="left")
        idx = np.minimum(idx, len(self._watts) - 1)
        return self._watts[idx]

    def energy(self) -> float:
        """Exact energy in joules over the whole interval."""
        return float(np.sum((self._ends - self._starts) * self._watts))

    def mean_power(self) -> float:
        """Exact time-averaged watts."""
        return self.energy() / self.duration

    def max_power(self) -> float:
        """Peak watts."""
        return float(self._watts.max())

    def resample(self, times: Sequence[float]) -> np.ndarray:
        """Wall watts at each of ``times`` (array-native; right-continuous).

        Exactly :meth:`power_at_many` under a name that pairs with
        :meth:`downsample` — the timeline layer samples truth curves onto
        render grids through this.
        """
        return self.power_at_many(times)

    def downsample(self, max_segments: int) -> "PiecewisePower":
        """An energy-preserving coarsening to at most ``max_segments``.

        Rebins the curve onto a uniform grid whose per-bin watts are the
        bin's *exact* mean power (bin energy / bin width, computed from
        the cumulative-energy function), so the result's
        :meth:`energy` telescopes to the original's up to float rounding.
        Peaks narrower than a bin are averaged away — use the timeline
        layer's min-max binning when extrema must survive rendering.
        """
        if max_segments < 1:
            raise PowerModelError(f"max_segments must be >= 1, got {max_segments}")
        n = self._watts.size
        if n <= max_segments:
            return PiecewisePower.from_arrays(
                self._starts.copy(), self._ends.copy(), self._watts.copy()
            )
        edges = np.linspace(self._starts[0], self._ends[-1], max_segments + 1)
        cum = np.concatenate(
            [[0.0], np.cumsum((self._ends - self._starts) * self._watts)]
        )
        idx = np.minimum(np.searchsorted(self._ends, edges, side="left"), n - 1)
        energy_at = cum[idx] + (edges - self._starts[idx]) * self._watts[idx]
        w_mean = np.diff(energy_at) / np.diff(edges)
        return PiecewisePower.from_arrays(
            edges[:-1], edges[1:].copy(), np.maximum(w_mean, 0.0)
        )

    @classmethod
    def constant(cls, watts: float, duration: float) -> "PiecewisePower":
        """A constant-power interval (convenience for tests/examples)."""
        return cls([(0.0, duration, watts)])

    @classmethod
    def from_arrays(
        cls,
        starts: np.ndarray,
        ends: np.ndarray,
        watts: np.ndarray,
    ) -> "PiecewisePower":
        """Trusted constructor for pre-validated segment arrays.

        The per-segment Python validation in ``__init__`` is O(segments)
        interpreter work — measurable when the sweep-line integrator hands
        over tens of thousands of segments per run.  Callers promise the
        arrays are already sorted, non-negative, tiling, and non-empty
        (the integrator asserts exact tiling before calling); only O(1)
        structural checks run here.  The arrays are adopted, not copied.
        """
        starts = np.asarray(starts, dtype=float)
        ends = np.asarray(ends, dtype=float)
        watts = np.asarray(watts, dtype=float)
        if not (starts.ndim == ends.ndim == watts.ndim == 1):
            raise PowerModelError("segment arrays must be 1-D")
        if not (starts.size == ends.size == watts.size):
            raise PowerModelError(
                f"segment arrays differ in length: "
                f"{starts.size}/{ends.size}/{watts.size}"
            )
        if starts.size == 0:
            raise PowerModelError("PiecewisePower needs at least one non-empty segment")
        self = cls.__new__(cls)
        self._starts = starts
        self._ends = ends
        self._watts = watts
        return self

    def __repr__(self) -> str:
        return (
            f"PiecewisePower({len(self._watts)} segments, "
            f"{format_time(self.duration)}, mean {format_power(self.mean_power())})"
        )


class PowerTrace:
    """Sampled (timestamp, watts) series — what a wall-plug meter logs.

    Samples may arrive unsorted (merged meter logs) — they are sorted on
    construction.  Duplicate timestamps are deduplicated when they agree
    on the watts; duplicates that *disagree* raise
    :class:`~repro.exceptions.PowerModelError`, because trapezoidal
    integration over a zero-width step silently mis-prices the
    neighbouring intervals.
    """

    def __init__(self, times: Sequence[float], watts: Sequence[float]):
        times_arr = np.asarray(times, dtype=float)
        watts_arr = np.asarray(watts, dtype=float)
        if times_arr.ndim != 1 or watts_arr.ndim != 1:
            raise PowerModelError("times and watts must be 1-D")
        if times_arr.size != watts_arr.size:
            raise PowerModelError(
                f"times ({times_arr.size}) and watts ({watts_arr.size}) differ in length"
            )
        if times_arr.size < 1:
            raise PowerModelError("a PowerTrace needs at least one sample")
        if np.any(np.diff(times_arr) < 0):
            # stable, so equal-timestamp samples keep their input order and
            # the conflict check below sees them adjacent
            order = np.argsort(times_arr, kind="stable")
            times_arr = times_arr[order]
            watts_arr = watts_arr[order]
        duplicate = np.zeros(times_arr.size, dtype=bool)
        if times_arr.size > 1:
            np.equal(times_arr[1:], times_arr[:-1], out=duplicate[1:])
        if duplicate.any():
            conflict = duplicate.copy()
            conflict[1:] &= watts_arr[1:] != watts_arr[:-1]
            if conflict.any():
                t_bad = times_arr[conflict][0]
                raise PowerModelError(
                    f"conflicting duplicate samples at t={t_bad}: a timestamp "
                    "may repeat only with identical watts"
                )
            times_arr = times_arr[~duplicate]
            watts_arr = watts_arr[~duplicate]
        if np.any(watts_arr < 0):
            raise PowerModelError("power samples must be non-negative")
        self._times = times_arr
        self._watts = watts_arr

    @property
    def times(self) -> np.ndarray:
        """Sample timestamps in seconds (read-only view)."""
        view = self._times.view()
        view.flags.writeable = False
        return view

    @property
    def watts(self) -> np.ndarray:
        """Sampled watts (read-only view)."""
        view = self._watts.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return int(self._times.size)

    @property
    def duration(self) -> float:
        """Seconds spanned by the samples."""
        return float(self._times[-1] - self._times[0])

    def energy(self) -> float:
        """Trapezoidal energy in joules (0 for a single sample)."""
        if len(self) < 2:
            return 0.0
        return float(np.trapezoid(self._watts, self._times))

    def mean_power(self) -> float:
        """Time-weighted mean watts (simple mean for a single sample)."""
        if len(self) < 2:
            return float(self._watts[0])
        return self.energy() / self.duration

    def max_power(self) -> float:
        """Peak sampled watts."""
        return float(self._watts.max())

    def min_power(self) -> float:
        """Minimum sampled watts."""
        return float(self._watts.min())

    def slice(self, t0: float, t1: float) -> "PowerTrace":
        """Samples with ``t0 <= t <= t1`` (must contain at least one)."""
        if t1 < t0:
            raise PowerModelError(f"t1 ({t1}) must be >= t0 ({t0})")
        mask = (self._times >= t0) & (self._times <= t1)
        if not mask.any():
            raise PowerModelError(f"no samples in [{t0}, {t1}]")
        return PowerTrace(self._times[mask], self._watts[mask])

    def resample(self, times: Sequence[float]) -> "PowerTrace":
        """Linear interpolation onto ``times`` (all within the sampled span)."""
        times_arr = np.asarray(times, dtype=float)
        if times_arr.size == 0:
            raise PowerModelError("resample needs at least one target time")
        if (
            times_arr.min() < self._times[0] - 1e-12
            or times_arr.max() > self._times[-1] + 1e-12
        ):
            raise PowerModelError(
                f"resample times outside sampled span "
                f"[{self._times[0]}, {self._times[-1]}]"
            )
        return PowerTrace(times_arr, np.interp(times_arr, self._times, self._watts))

    def downsample(self, max_samples: int) -> "PowerTrace":
        """Largest-Triangle-Three-Buckets selection of ``max_samples`` samples.

        Deterministic: ties inside a bucket resolve to the earliest sample.
        Keeps the first and last samples, so the span is preserved; a trace
        already at or under ``max_samples`` is returned unchanged (a copy).
        """
        if max_samples < 3:
            raise PowerModelError(f"max_samples must be >= 3, got {max_samples}")
        if len(self) <= max_samples:
            return PowerTrace(self._times.copy(), self._watts.copy())
        from ..timeline.downsample import lttb_indices

        idx = lttb_indices(self._times, self._watts, max_samples)
        return PowerTrace(self._times[idx], self._watts[idx])

    def concat(self, other: "PowerTrace") -> "PowerTrace":
        """This trace followed by ``other`` (timestamps must keep increasing)."""
        return PowerTrace(
            np.concatenate([self._times, other._times]),
            np.concatenate([self._watts, other._watts]),
        )

    def shifted(self, dt: float) -> "PowerTrace":
        """A copy with all timestamps moved by ``dt``."""
        return PowerTrace(self._times + dt, self._watts)

    def __repr__(self) -> str:
        return (
            f"PowerTrace({len(self)} samples over {format_time(self.duration)}, "
            f"mean {format_power(self.mean_power())}, "
            f"energy {format_energy(self.energy())})"
        )
