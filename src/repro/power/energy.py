"""Energy accounting helpers.

The paper's Section II notes that the TGI methodology is agnostic to the
underlying energy-efficiency metric and names the energy-delay product (EDP)
as an alternative to performance-per-watt; these helpers provide both
ingredients.
"""

from __future__ import annotations

from ..exceptions import MetricError
from ..validation import check_non_negative, check_positive

__all__ = ["energy_delay_product", "average_power", "energy_to_solution"]


def energy_delay_product(energy_joules: float, delay_seconds: float, *, weight: int = 1) -> float:
    """EDP = energy x delay^weight.

    ``weight=1`` is the classic EDP; ``weight=2`` the ED^2P variant that
    de-emphasizes voltage scaling.  Lower is better.
    """
    check_non_negative(energy_joules, "energy_joules", exc=MetricError)
    check_non_negative(delay_seconds, "delay_seconds", exc=MetricError)
    if weight < 1:
        raise MetricError(f"weight must be >= 1, got {weight}")
    return energy_joules * delay_seconds**weight


def average_power(energy_joules: float, duration_seconds: float) -> float:
    """Mean watts over a run: E / t."""
    check_non_negative(energy_joules, "energy_joules", exc=MetricError)
    check_positive(duration_seconds, "duration_seconds", exc=MetricError)
    return energy_joules / duration_seconds


def energy_to_solution(average_watts: float, duration_seconds: float) -> float:
    """Energy in joules for a run of ``duration_seconds`` at ``average_watts``."""
    check_non_negative(average_watts, "average_watts", exc=MetricError)
    check_non_negative(duration_seconds, "duration_seconds", exc=MetricError)
    return average_watts * duration_seconds
