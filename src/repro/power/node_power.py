"""Per-node power aggregation: DC draw and wall draw for one node.

:class:`NodePowerModel` bundles the component models for one
:class:`~repro.cluster.node.NodeSpec` and its PSU.  It is the single place
where "a node at utilization *u* draws *P* watts at the wall" is defined;
everything upstream (the simulator) produces utilizations and everything
downstream (the meter) sums wall watts across nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..cluster.node import NodeSpec
from .components import (
    AcceleratorPowerModel,
    CPUPowerModel,
    MemoryPowerModel,
    NICPowerModel,
    NodeUtilization,
    NodeUtilizationArray,
    StoragePowerModel,
)
from .psu import PSUModel

__all__ = ["NodePowerModel"]

#: Headroom factor: PSUs are sized above the node's nominal full-load draw.
_PSU_SIZING_FACTOR = 1.25


@dataclass(frozen=True)
class NodePowerModel:
    """Utilization -> watts for one node.

    Parameters
    ----------
    node:
        The node being modelled.
    psu:
        Power supply; defaults to a :class:`~repro.power.psu.PSUModel` rated
        at 1.25 x the node's nominal full-load DC draw with the default
        efficiency curve.
    cpu_awake_floor:
        Passed through to :class:`~repro.power.components.CPUPowerModel`.
    """

    node: NodeSpec
    psu: Optional[PSUModel] = None
    cpu_awake_floor: float = 0.45

    def __post_init__(self) -> None:
        if self.psu is None:
            object.__setattr__(
                self,
                "psu",
                PSUModel(rated_watts=_PSU_SIZING_FACTOR * self.node.nominal_max_watts),
            )
        object.__setattr__(
            self,
            "_cpu",
            CPUPowerModel(
                spec=self.node.cpu,
                sockets=self.node.sockets,
                awake_floor=self.cpu_awake_floor,
            ),
        )
        object.__setattr__(
            self, "_memory", MemoryPowerModel(spec=self.node.memory, sockets=self.node.sockets)
        )
        object.__setattr__(self, "_storage", StoragePowerModel(spec=self.node.storage))
        object.__setattr__(self, "_nic", NICPowerModel(spec=self.node.nic))
        object.__setattr__(
            self,
            "_accelerators",
            tuple(AcceleratorPowerModel(spec=acc) for acc in self.node.accelerators),
        )

    def dc_power(self, util: NodeUtilization) -> float:
        """DC watts drawn by the node at the given utilization."""
        total = (
            self.node.base_watts
            + self._cpu.power(util)
            + self._memory.power(util)
            + self._storage.power(util)
            + self._nic.power(util)
        )
        for acc in self._accelerators:
            total += acc.power(util)
        return total

    def wall_power(self, util: NodeUtilization) -> float:
        """AC watts drawn from the outlet at the given utilization."""
        return self.psu.wall_watts(self.dc_power(util))

    def idle_wall_power(self) -> float:
        """Wall watts of a fully idle node."""
        return self.wall_power(NodeUtilization.idle())

    def max_wall_power(self) -> float:
        """Wall watts with every component fully loaded."""
        full = NodeUtilization(
            cpu_active_fraction=1.0,
            cpu_intensity=1.0,
            memory=1.0,
            storage=1.0,
            nic=1.0,
            accelerator=1.0,
        )
        return self.wall_power(full)

    def component_breakdown(self, util: NodeUtilization) -> dict:
        """Per-component DC watts (for reports and debugging)."""
        breakdown = {
            "base": self.node.base_watts,
            "cpu": self._cpu.power(util),
            "memory": self._memory.power(util),
            "storage": self._storage.power(util),
            "nic": self._nic.power(util),
        }
        if self._accelerators:
            breakdown["accelerators"] = sum(acc.power(util) for acc in self._accelerators)
        return breakdown

    # -- batched struct-of-arrays API ----------------------------------
    #
    # One call prices a node's whole timeline.  Each method mirrors its
    # scalar sibling operation-for-operation so that batched evaluation is
    # bitwise identical to mapping the scalar model over the slices (the
    # sweep-line integrator's equivalence guarantee rests on this).

    def dc_power_many(self, util: NodeUtilizationArray) -> np.ndarray:
        """DC watts per timeline slice."""
        total = (
            self.node.base_watts
            + self._cpu.power_many(util)
            + self._memory.power_many(util)
            + self._storage.power_many(util)
            + self._nic.power_many(util)
        )
        for acc in self._accelerators:
            total = total + acc.power_many(util)
        return total

    def wall_power_many(self, util: NodeUtilizationArray) -> np.ndarray:
        """AC watts per timeline slice."""
        return self.psu.wall_watts_many(self.dc_power_many(util))

    def component_breakdown_many(self, util: NodeUtilizationArray) -> Dict[str, np.ndarray]:
        """Per-component DC watts, one array per component class."""
        breakdown = {
            "base": np.full(len(util), self.node.base_watts),
            "cpu": self._cpu.power_many(util),
            "memory": self._memory.power_many(util),
            "storage": self._storage.power_many(util),
            "nic": self._nic.power_many(util),
        }
        if self._accelerators:
            acc_watts = self._accelerators[0].power_many(util)
            for acc in self._accelerators[1:]:
                acc_watts = acc_watts + acc.power_many(util)
            breakdown["accelerators"] = acc_watts
        return breakdown
