"""Command-line interface.

::

    tgi list                     # available experiments
    tgi run fig5                 # regenerate one figure/table
    tgi run all                  # regenerate everything
    tgi rank                     # TGI ranking of the preset systems
    tgi specs                    # print the preset system spec sheets
    tgi campaign --workers 4     # parallel, cached measurement campaign
    tgi campaign --journal r.jl  # ... with the flight recorder armed
    tgi campaign --timeline tl/  # ... with per-job power timelines captured
    tgi campaign --shards 8 --cache-dir c/ --journal r.jl   # sharded scheduler
    tgi campaign --resume r.jl --cache-dir c/   # crash-resume a journaled run
    tgi watch r.jl               # live progress of an in-flight journaled run
    tgi tail r.jl -f             # stream journal events as they arrive
    tgi journal report r.jl      # post-run anomaly report (stragglers, storms)
    tgi journal validate r.jl    # schema-check every journal event
    tgi journal summary r.jl --json   # final progress snapshot, machine-readable
    tgi dashboard --timeline tl/ -o fleet.html  # self-contained fleet dashboard
    tgi trace                    # span tree + hot spots of an instrumented run
    tgi trace export --journal r.jl -o t.json   # Perfetto / chrome://tracing
    tgi bench run --quick        # perf-watch: run + record the quick tier
    tgi bench report --json      # regression verdicts from recorded history

Output contract: the machine-readable product of a command (tables,
fingerprints, traces, reports) goes to stdout; progress and bookkeeping go
to stderr and are silenced by the global ``--quiet`` flag.  ``run``,
``campaign``, and ``bench run`` accept ``--telemetry PATH`` to collect a
full trace: the JSON export lands at PATH with a Prometheus text dump
beside it (``.prom``).  ``run`` and ``campaign`` accept ``--journal PATH``
to arm the append-only flight recorder (see ``docs/observability.md``).

Also reachable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from . import __version__
from . import journal as jrnl
from . import telemetry as tele
from .analysis.tables import render_table
from .benchmarks import BenchmarkSuite
from .cluster import presets
from .core import TGICalculator, format_ranking, rank_systems
from .exceptions import ReproError
from .experiments import (
    EXPERIMENTS,
    PAPER_CONFIG,
    SharedContext,
    build_suite,
    get_experiment,
)
from .sim import ClusterExecutor
from .units import format_bytes, format_flops, format_power

__all__ = ["main", "build_parser", "Console"]

_SYSTEM_CHOICES = ("fire", "system_g", "gpu_cluster", "modern_cluster")


class Console:
    """Routes CLI output: results to stdout, status to stderr.

    ``out`` carries the command's product — what a pipe or redirect should
    capture.  ``status`` carries progress/bookkeeping and is dropped under
    ``--quiet``.  ``error`` always reaches stderr.
    """

    def __init__(self, *, quiet: bool = False):
        self.quiet = quiet

    def out(self, text: str = "") -> None:
        print(text)

    def status(self, text: str = "") -> None:
        if not self.quiet:
            print(text, file=sys.stderr)

    def error(self, text: str) -> None:
        print(text, file=sys.stderr)


#: The process-wide console; ``main`` configures quietness from the flags.
_console = Console()


def _json_out(payload) -> None:
    """Print a ``--json`` payload: pure JSON on stdout, nothing else.

    Every machine-readable mode (``journal report --json``, ``journal
    summary --json``, ``bench report --json``) goes through here so the
    contract stays uniform: stdout parses as one JSON document; status and
    warnings ride stderr only.
    """
    _console.out(json.dumps(payload, indent=2, sort_keys=True))


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="tgi",
        description="The Green Index (TGI) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress status output on stderr (results still print to stdout)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run an experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (fig2..fig6, table1, table2) or 'all'")
    run.add_argument(
        "--plot", action="store_true", help="also render figure series as ASCII charts"
    )
    run.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="collect spans/metrics and write the telemetry JSON here "
        "(Prometheus text lands beside it with a .prom suffix)",
    )
    run.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="append run lifecycle events to this JSONL flight-recorder file",
    )

    rank = sub.add_parser("rank", help="rank the preset systems by TGI")
    rank.add_argument(
        "--cores",
        type=int,
        default=0,
        help="core count to benchmark each system at (default: each system's full size)",
    )
    rank.add_argument(
        "--profile",
        choices=("cfd", "genomics", "checkpoint", "dense-linalg"),
        default=None,
        help="weight the suite for an application profile instead of equal weights",
    )

    sub.add_parser("specs", help="print the preset system spec sheets")

    suite = sub.add_parser(
        "suite", help="run the suite on one preset system and print the measurements"
    )
    suite.add_argument(
        "--system",
        choices=_SYSTEM_CHOICES,
        default="fire",
        help="preset system to measure",
    )
    suite.add_argument(
        "--cores", type=int, default=0, help="MPI ranks (default: full machine)"
    )
    suite.add_argument(
        "--breakdown", action="store_true", help="also print the energy attribution"
    )
    suite.add_argument(
        "--engine",
        choices=ClusterExecutor.ENGINE_MODES,
        default="vectorized",
        help="discrete-event engine: the struct-of-arrays sweep (default) "
        "or the event-heap reference oracle",
    )

    sub.add_parser(
        "sensitivity", help="weight-simplex sensitivity of TGI at full scale"
    )

    archive = sub.add_parser(
        "archive", help="run the calibrated campaign and save it as JSON"
    )
    archive.add_argument("output", help="path of the JSON archive to write")

    campaign = sub.add_parser(
        "campaign",
        help="run a measurement campaign through the parallel executor",
    )
    campaign.add_argument(
        "--workers", type=int, default=1, help="process-pool width (1 = serial)"
    )
    campaign.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache directory (omit to disable caching)",
    )
    campaign.add_argument(
        "--manifest", default=None, help="write the JSON run manifest to this path"
    )
    campaign.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="trace the campaign (spans from every job phase, metrics, "
        "energy attribution) into this JSON file, plus a .prom sibling",
    )
    campaign.add_argument(
        "--fleet",
        type=int,
        default=0,
        help="also measure N generated machines at full scale",
    )
    campaign.add_argument(
        "--era",
        choices=("2008", "2011", "2015", "2021"),
        default="2011",
        help="era template for the generated fleet",
    )
    campaign.add_argument(
        "--fleet-seed", type=int, default=20110615, help="fleet generation seed"
    )
    campaign.add_argument(
        "--retries",
        type=int,
        default=0,
        help="extra attempts granted to a failing job (seeded exponential backoff)",
    )
    campaign.add_argument(
        "--retry-backoff",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="base backoff delay between attempts (0 = retry immediately)",
    )
    policy = campaign.add_mutually_exclusive_group()
    policy.add_argument(
        "--keep-going",
        dest="keep_going",
        action="store_true",
        help="finish surviving jobs when one fails (exit code 3 reports the damage)",
    )
    policy.add_argument(
        "--fail-fast",
        dest="keep_going",
        action="store_false",
        help="abort the campaign on the first exhausted job (default)",
    )
    campaign.set_defaults(keep_going=False)
    campaign.add_argument(
        "--inject",
        action="append",
        default=[],
        metavar="JOB:KIND[:VALUE]",
        help="inject a deterministic fault into JOB; KIND is transient[:N], "
        "flaky[:P], meter-dropout[:P], node-crash[:P], or benchmark-crash[:P]; "
        "repeatable, multiple specs for one job compose into one plan",
    )
    campaign.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the injected-fault draws (fixed seed = fixed fault pattern)",
    )
    campaign.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="arm the flight recorder: append run/job/fault events to this "
        "JSONL file (follow live with `tgi watch PATH`)",
    )
    campaign.add_argument(
        "--timeline",
        default=None,
        metavar="DIR",
        help="capture per-job power timelines into DIR as "
        "<job>.timeline.json artifacts (render with `tgi dashboard`)",
    )
    campaign.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run on the sharded work-stealing scheduler with N deterministic "
        "shards (0 = plain runner unless --resume; resume defaults to one "
        "shard per worker)",
    )
    campaign.add_argument(
        "--resume",
        default=None,
        metavar="JOURNAL",
        help="resume a crashed campaign from its journal: replay it, skip "
        "jobs already completed and recoverable from --cache-dir, re-schedule "
        "the remainder, and extend the same journal (requires --cache-dir)",
    )

    fleet = sub.add_parser(
        "fleet",
        help="batched cross-system fleet evaluation and ranking",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    f_rank = fleet_sub.add_parser(
        "rank",
        help="rank a generated fleet Green500-style: MFLOPS/W vs TGI",
    )
    f_rank.add_argument(
        "--count", type=int, default=100, help="fleet size (generated systems)"
    )
    f_rank.add_argument(
        "--era",
        choices=("2008", "2011", "2015", "2021"),
        default="2011",
        help="era template for the generated fleet",
    )
    f_rank.add_argument(
        "--fleet-seed", type=int, default=20110615, help="fleet generation seed"
    )
    f_rank.add_argument(
        "--weights",
        default=None,
        metavar="SPEC",
        help='benchmark weights, e.g. "HPL=0.5,STREAM=0.25,IOzone=0.25" '
        "(normalized to sum to one; default equal weights)",
    )
    f_rank.add_argument(
        "--reference",
        default="system_g:16",
        metavar="PRESET[:NODES]",
        help="reference machine preset, optionally with a node-count "
        "override (default system_g:16, the Green500-style example's)",
    )
    f_rank.add_argument(
        "--reference-suite",
        action="store_true",
        help="size the reference's HPL from memory (the paper's "
        "capability-run semantics) instead of the fleet's fixed N",
    )
    f_rank.add_argument(
        "--top",
        type=int,
        default=20,
        help="list rows to print (0 = the whole fleet)",
    )
    f_rank.add_argument(
        "--path",
        choices=("batched", "reference"),
        default="batched",
        help="analytic leg: vectorized (default) or the scalar oracle "
        "(slow, for cross-checks)",
    )
    f_rank.add_argument(
        "--chunk-size",
        type=int,
        default=1024,
        metavar="N",
        help="systems per vectorized evaluation chunk",
    )
    f_rank.add_argument(
        "--full-sim",
        action="store_true",
        help="force every system through the campaign executors "
        "(simulated meter included) instead of the analytic path",
    )
    f_rank.add_argument(
        "--workers", type=int, default=1, help="campaign-leg process-pool width"
    )
    f_rank.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="campaign leg on the sharded scheduler with N shards",
    )
    f_rank.add_argument(
        "--cache-dir",
        default=None,
        help="campaign-leg result cache directory",
    )
    f_rank.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="flight recorder: campaign events plus one fleet.ranked "
        "summary event land in this JSONL file",
    )
    f_rank.add_argument(
        "--timeline",
        default=None,
        metavar="DIR",
        help="campaign-leg power-timeline artifacts directory",
    )
    f_rank.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="trace the ranking (pack/evaluate/rank spans) into this JSON "
        "file, plus a .prom sibling",
    )
    f_rank.add_argument(
        "--json",
        action="store_true",
        help="print the full ranking as JSON on stdout",
    )

    dashboard = sub.add_parser(
        "dashboard",
        help="render captured power timelines into one self-contained HTML file",
    )
    dashboard.add_argument(
        "--timeline",
        required=True,
        metavar="DIR",
        help="timeline artifact directory written by `tgi campaign --timeline`",
    )
    dashboard.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="campaign manifest JSON to summarize in the header",
    )
    dashboard.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="run journal to summarize (final progress snapshot)",
    )
    dashboard.add_argument(
        "--perfwatch-dir",
        default=None,
        metavar="DIR",
        help="directory of BENCH_<scenario>.json trajectories to chart",
    )
    dashboard.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="PATH",
        help="write the HTML here (default: stdout)",
    )
    dashboard.add_argument(
        "--title", default="TGI fleet dashboard", help="dashboard page title"
    )

    watch = sub.add_parser(
        "watch",
        help="live progress of a journaled campaign (follows the journal file)",
    )
    watch.add_argument("journal", help="journal path passed to --journal")
    watch.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="poll interval (default: 0.5)",
    )
    watch.add_argument(
        "--once", action="store_true", help="render one snapshot and exit"
    )
    watch.add_argument(
        "--timeout",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="stop following after this long (0 = follow until run.stop)",
    )

    tail = sub.add_parser("tail", help="print journal events, optionally following")
    tail.add_argument("journal", help="journal path passed to --journal")
    tail.add_argument(
        "-f", "--follow", action="store_true",
        help="keep polling for new events until run.stop",
    )
    tail.add_argument(
        "--raw", action="store_true", help="raw JSONL lines instead of the human rendering"
    )
    tail.add_argument("--interval", type=float, default=0.5, metavar="SECONDS")
    tail.add_argument(
        "--timeout", type=float, default=0.0, metavar="SECONDS",
        help="with --follow, stop after this long (0 = until run.stop)",
    )

    journal = sub.add_parser(
        "journal", help="inspect a run journal: anomaly report, validation, summary"
    )
    journal_sub = journal.add_subparsers(dest="journal_command", required=True)
    j_report = journal_sub.add_parser(
        "report", help="post-run anomaly report: stragglers, retry storms, cache collapse"
    )
    j_report.add_argument("journal", help="journal path to analyze")
    j_report.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable report on stdout",
    )
    j_report.add_argument(
        "--straggler-z", type=float, default=3.5,
        help="modified z-score above which a completed job is a straggler",
    )
    j_report.add_argument(
        "--storm-fraction", type=float, default=0.25,
        help="retried fraction of executed jobs that flags a run-level storm",
    )
    j_report.add_argument(
        "--collapse-drop", type=float, default=0.5,
        help="second-half hit rate below this fraction of the first half's flags collapse",
    )
    j_report.add_argument(
        "--fail-on-anomaly", action="store_true",
        help="exit 1 when anything is flagged (for blocking CI gates)",
    )
    j_validate = journal_sub.add_parser(
        "validate", help="schema-check every event; exit 1 on any violation"
    )
    j_validate.add_argument("journal", help="journal path to validate")
    j_summary = journal_sub.add_parser(
        "summary", help="final progress snapshot of a recorded run"
    )
    j_summary.add_argument("journal", help="journal path to summarize")
    j_summary.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable snapshot on stdout",
    )

    bench = sub.add_parser(
        "bench",
        help="perf-watch: run registered benchmark scenarios against recorded history",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    b_run = bench_sub.add_parser(
        "run", help="execute scenarios, record history, write BENCH_*.json"
    )
    b_run.add_argument(
        "--quick", action="store_true", help="only the quick tier (the CI set)"
    )
    b_run.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="ID",
        help="run only this scenario (repeatable; overrides --quick)",
    )
    b_run.add_argument(
        "--repeats", type=int, default=0, help="override each scenario's repeat count"
    )
    b_run.add_argument(
        "--history",
        default=None,
        metavar="DIR",
        help="history store directory (default: .perfwatch)",
    )
    b_run.add_argument(
        "--trajectory-dir",
        default=".",
        metavar="DIR",
        help="where BENCH_<scenario>.json trajectory files land (default: repo root)",
    )
    b_run.add_argument(
        "--bench-dir",
        default=None,
        metavar="DIR",
        help="directory of bench_*.py scripts to discover (default: ./benchmarks)",
    )
    b_run.add_argument(
        "--no-record",
        action="store_true",
        help="measure and classify only; do not touch history or trajectories",
    )
    b_run.add_argument(
        "--profile",
        action="store_true",
        help="attach cProfile top-N hotspots to records and telemetry spans",
    )
    b_run.add_argument(
        "--profile-top", type=int, default=10, help="hotspot rows per profile"
    )
    b_run.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="trace the bench run itself into this telemetry JSON (+ .prom sibling)",
    )

    b_list = bench_sub.add_parser("list", help="list registered scenarios")
    b_list.add_argument("--bench-dir", default=None, metavar="DIR")

    b_report = bench_sub.add_parser(
        "report", help="classify the newest record of each scenario vs its baseline"
    )
    b_report.add_argument("--history", default=None, metavar="DIR")
    b_report.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="machine-readable report on stdout (status stays on stderr)",
    )
    b_report.add_argument(
        "--scenario", action="append", default=None, metavar="ID"
    )
    b_report.add_argument(
        "--window", type=int, default=20, help="baseline history window"
    )
    b_report.add_argument(
        "--min-effect",
        type=float,
        default=0.05,
        help="relative band around the CI below which changes are 'stable'",
    )
    b_report.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 1 when any scenario regresses (for blocking CI gates)",
    )

    b_compare = bench_sub.add_parser(
        "compare", help="diff two records of one scenario, plus its trajectory"
    )
    b_compare.add_argument("scenario", help="scenario id")
    b_compare.add_argument("--history", default=None, metavar="DIR")
    b_compare.add_argument(
        "--base", default=None, metavar="KEY", help="baseline record key (default: second-newest)"
    )
    b_compare.add_argument(
        "--new", default=None, metavar="KEY", help="new record key (default: newest)"
    )
    b_compare.add_argument(
        "--metric", default="wall_s", help="metric for the trajectory table"
    )

    trace = sub.add_parser(
        "trace",
        help="render a span tree and hot-spot summary (live run or saved export)",
    )
    trace.add_argument(
        "--input",
        default=None,
        metavar="PATH",
        help="telemetry JSON written by --telemetry; omit to trace a live suite run",
    )
    trace.add_argument(
        "--system",
        choices=_SYSTEM_CHOICES,
        default="fire",
        help="preset system for the live run (ignored with --input)",
    )
    trace.add_argument(
        "--cores",
        type=int,
        default=0,
        help="MPI ranks for the live run (default: full machine)",
    )
    trace.add_argument(
        "--top", type=int, default=10, help="how many slowest spans to list"
    )
    trace.add_argument(
        "--engine",
        choices=ClusterExecutor.ENGINE_MODES,
        default="vectorized",
        help="discrete-event engine for the live run (ignored with --input)",
    )
    # Optional subcommands under `trace`; plain `tgi trace [--input ...]`
    # keeps its historical behaviour (trace_command stays None).
    trace_sub = trace.add_subparsers(dest="trace_command")
    t_export = trace_sub.add_parser(
        "export",
        help="convert a journal and/or telemetry export to Chrome trace-event "
        "JSON (open in ui.perfetto.dev or chrome://tracing)",
    )
    t_export.add_argument(
        "--format",
        choices=jrnl.TRACE_FORMATS,
        default="chrome",
        help="output format (chrome = trace-event JSON, the Perfetto input)",
    )
    t_export.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="campaign journal to convert (attempt slices, faults, cache hits)",
    )
    t_export.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="telemetry JSON export to overlay (span slices, clock-aligned)",
    )
    t_export.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="PATH",
        help="write the trace JSON here (default: stdout)",
    )
    return parser


def _write_telemetry(session: "tele.TelemetrySession", path: str, *, attribution=None) -> None:
    """Persist a session: JSON export at ``path``, Prometheus text beside it.

    Both files go through the shared atomic write-temp + ``os.replace``
    helper (like manifests and journal summaries), so a crash mid-write
    never leaves a truncated export behind.
    """
    from .serialization import atomic_write_text

    export = session.export(attribution=attribution)
    target = Path(path)
    atomic_write_text(target, json.dumps(export, indent=2, sort_keys=True) + "\n")
    prom = target.with_suffix(".prom")
    atomic_write_text(prom, session.to_prometheus())
    _console.status(f"telemetry written to {target} (metrics: {prom})")


def _cmd_list() -> int:
    rows = [[exp_id, entry.description] for exp_id, entry in EXPERIMENTS.items()]
    _console.out(render_table(["id", "description"], rows, align_right_from=99))
    return 0


def _cmd_run(
    experiment: str,
    plot: bool = False,
    telemetry: Optional[str] = None,
    journal: Optional[str] = None,
) -> int:
    context = SharedContext()
    if experiment == "all":
        ids = list(EXPERIMENTS)
    else:
        ids = [experiment]

    def execute() -> None:
        for exp_id in ids:
            entry = get_experiment(exp_id)
            _console.status(f"running {exp_id} ...")
            result = entry.run(context)
            _console.out(result.format())
            if plot:
                chart = _chart_for(result)
                if chart:
                    _console.out()
                    _console.out(chart)
            _console.out()

    writer = None
    t_start = time.perf_counter()
    if journal:
        writer = jrnl.JournalWriter(Path(journal), label=f"run:{experiment}")
        writer.emit(
            "run.start",
            label=f"run:{experiment}",
            jobs=len(ids),
            workers=1,
            retries_allowed=0,
            keep_going=False,
            cache_enabled=False,
        )
        jrnl.attach(writer)
    status = "aborted"
    try:
        if telemetry:
            with tele.use(tele.TelemetrySession(label=f"run:{experiment}")) as session:
                execute()
            _write_telemetry(session, telemetry)
        else:
            execute()
        status = "ok"
    finally:
        if writer is not None:
            jrnl.detach()
            writer.finalize(
                status=status,
                jobs_failed=0,
                total_wall_s=time.perf_counter() - t_start,
            )
            _console.status(f"journal written to {writer.path}")
    return 0


def _chart_for(result) -> Optional[str]:
    """ASCII chart for figure results; tables have nothing to plot."""
    from .experiments.curves import EfficiencyCurveResult
    from .experiments.tgi_curves import TGICurveResult, TGIWeightedResult
    from .viz import ascii_chart

    if isinstance(result, EfficiencyCurveResult):
        return ascii_chart(
            {result.benchmark: list(result.efficiency)},
            x=list(result.x),
            title=f"{result.figure} ({result.unit_label})",
            x_label=result.x_label,
            y_label=result.unit_label,
        )
    if isinstance(result, TGICurveResult):
        return ascii_chart(
            {"TGI": result.series.values.tolist()},
            x=list(result.cores),
            title="Figure 5 (TGI, arithmetic mean)",
            x_label="cores",
            y_label="TGI",
        )
    if isinstance(result, TGIWeightedResult):
        return ascii_chart(
            {
                name: series.values.tolist()
                for name, series in result.series_by_weighting.items()
            },
            x=list(result.cores),
            title="Figure 6 (TGI under different weights)",
            x_label="cores",
            y_label="TGI",
        )
    return None


def _preset_suite_run(system: str, cores: int, engine: str = "vectorized"):
    """Run the capability-view suite on one preset; returns (cluster, n, result)."""
    from .benchmarks import (
        BenchmarkSuite,
        HPLBenchmark,
        IOzoneBenchmark,
        StreamBenchmark,
    )

    cluster = getattr(presets, system)()
    executor = ClusterExecutor(cluster, rng=PAPER_CONFIG.fire_seed, engine=engine)
    # capability view: memory-sized HPL with the calibrated comm/contention
    # parameters (consistent with `tgi run capability`)
    suite = BenchmarkSuite(
        [
            HPLBenchmark(
                sizing=("memory", PAPER_CONFIG.hpl_reference_memory_fraction),
                rounds=PAPER_CONFIG.hpl_rounds,
                comm_volume_factor=PAPER_CONFIG.hpl_comm_volume_factor,
                contention_threshold=PAPER_CONFIG.hpl_contention_threshold,
                contention_slope=PAPER_CONFIG.hpl_contention_slope,
            ),
            StreamBenchmark(
                target_seconds=PAPER_CONFIG.stream_target_seconds,
                intensity=PAPER_CONFIG.stream_intensity,
            ),
            IOzoneBenchmark(target_seconds=PAPER_CONFIG.iozone_target_seconds),
        ]
    )
    n = min(cores or cluster.total_cores, cluster.total_cores)
    return cluster, n, suite.run(executor, n)


def _cmd_suite(system: str, cores: int, breakdown: bool, engine: str = "vectorized") -> int:
    from .core import format_suite_result
    from .units import format_energy

    cluster, n, result = _preset_suite_run(system, cores, engine)
    _console.out(format_suite_result(result, title=f"{cluster.name} @ {n} cores"))
    if breakdown:
        _console.out()
        for r in result:
            parts = r.record.energy_breakdown
            total = sum(parts.values())
            line = ", ".join(
                f"{k} {100 * v / total:.0f}%" for k, v in sorted(parts.items())
            )
            _console.out(f"{r.benchmark:13s} {format_energy(total)}: {line}")
    return 0


def _cmd_trace(
    input_path: Optional[str],
    system: str,
    cores: int,
    top: int,
    engine: str = "vectorized",
) -> int:
    from .telemetry import (
        AttributionRow,
        render_attribution,
        render_slowest,
        render_span_tree,
        suite_attribution,
    )

    if input_path:
        data = json.loads(Path(input_path).read_text())
        version = data.get("telemetry_version")
        if version != tele.TELEMETRY_VERSION:
            _console.error(
                f"telemetry version {version!r} not supported "
                f"(this build reads version {tele.TELEMETRY_VERSION})"
            )
            return 1
        spans = data.get("spans", [])
        _console.status(f"trace of session {data.get('label', '?')!r} ({input_path})")
        _console.out(render_span_tree(spans))
        _console.out()
        _console.out(render_slowest(spans, top))
        rows = data.get("attribution")
        if rows:
            _console.out()
            _console.out(render_attribution([AttributionRow(**row) for row in rows]))
        return 0

    _console.status(f"tracing a live suite run on {system} ...")
    with tele.use(tele.TelemetrySession(label=f"trace:{system}")) as session:
        cluster, n, result = _preset_suite_run(system, cores, engine)
    _console.out(render_span_tree(session.spans))
    _console.out()
    _console.out(render_slowest(session.spans, top))
    _console.out()
    _console.out(
        render_attribution(
            suite_attribution(result, job_id=f"{system}@{n}", cluster=cluster.name)
        )
    )
    return 0


#: Per-type fields worth showing in the human `tgi tail` rendering.
_TAIL_DETAIL_FIELDS = {
    "run.start": ("label", "jobs", "workers", "shards"),
    "run.resumed": ("jobs_recovered", "jobs_pending", "shards"),
    "run.stop": ("status", "jobs_failed", "total_wall_s"),
    "shard.planned": ("shard", "jobs"),
    "job.scheduled": ("job", "index"),
    "job.cache_hit": ("job", "attempt"),
    "job.started": ("job", "attempt"),
    "job.attempt_failed": ("job", "attempt", "error_type"),
    "job.retried": ("job", "attempt", "delay_s"),
    "job.completed": ("job", "attempts", "wall_s"),
    "job.stored": ("job",),
    "job.stolen": ("job", "from_shard", "by_shard"),
    "job.failed": ("job", "attempts", "error_type"),
    "worker.heartbeat": ("jobs_done", "max_rss_bytes"),
    "fault.injected": ("kind", "scope", "attempt"),
    "timeline.captured": ("job", "runs", "energy_j"),
}


def _format_journal_event(event: Dict) -> str:
    """One human-scannable line per journal event."""
    kind = event.get("event", "?")
    parts = []
    for key in _TAIL_DETAIL_FIELDS.get(kind, ()):
        if key not in event:
            continue
        value = event[key]
        if isinstance(value, float):
            value = f"{value:.3f}"
        parts.append(f"{key}={value}")
    return (
        f"{event.get('t_utc', '?'):<27} {event.get('process', '?'):<14} "
        f"{kind:<19} " + " ".join(parts)
    ).rstrip()


def _cmd_watch(args) -> int:
    """Follow a journal and render live progress until the run stops."""
    path = Path(args.journal)
    if args.once and not path.exists():
        _console.error(f"no journal at {path}")
        return 1
    follower = jrnl.JournalFollower(path)
    state = jrnl.RunState()
    deadline = time.monotonic() + args.timeout if args.timeout > 0 else None
    first = True
    while True:
        for event in follower.poll():
            jrnl.apply_event(state, event)
        now = None if state.complete else jrnl.now_mono()
        progress = jrnl.progress_from_state(state, now_mono=now)
        if not first:
            _console.out()
        _console.out(jrnl.render_progress(progress))
        first = False
        if args.once or state.complete:
            break
        if deadline is not None and time.monotonic() >= deadline:
            _console.status(
                f"watch: gave up after {args.timeout:.0f}s; run still in flight"
            )
            break
        time.sleep(args.interval)
    if state.complete and state.stop_status != "ok":
        return 3
    return 0


def _cmd_tail(args) -> int:
    """Print journal events, optionally following the file."""
    path = Path(args.journal)
    if not args.follow and not path.exists():
        _console.error(f"no journal at {path}")
        return 1
    follower = jrnl.JournalFollower(path)
    deadline = time.monotonic() + args.timeout if args.timeout > 0 else None
    stopped = False
    while True:
        for event in follower.poll():
            if args.raw:
                _console.out(json.dumps(event, separators=(",", ":"), sort_keys=True))
            else:
                _console.out(_format_journal_event(event))
            if event.get("event") == "run.stop":
                stopped = True
        if not args.follow or stopped:
            break
        if deadline is not None and time.monotonic() >= deadline:
            _console.status(f"tail: gave up after {args.timeout:.0f}s")
            break
        time.sleep(args.interval)
    return 0


def _cmd_journal(args) -> int:
    """`tgi journal report|validate|summary` — post-hoc journal inspection."""
    path = Path(args.journal)
    if not path.exists():
        _console.error(f"no journal at {path}")
        return 1
    if args.journal_command == "validate":
        scan = jrnl.scan_journal(path)
        problems = jrnl.validate_events(scan.events)
        _console.status(
            f"{path}: {len(scan.events)} events"
            + (", torn tail dropped" if scan.torn_tail else "")
            + (f", {scan.malformed} malformed line(s)" if scan.malformed else "")
        )
        if scan.malformed:
            problems.append(f"{scan.malformed} unparseable line(s)")
        if problems:
            for problem in problems:
                _console.out(problem)
            _console.error(f"journal validation failed: {len(problems)} problem(s)")
            return 1
        _console.out(f"journal ok: {len(scan.events)} valid events")
        return 0
    state = jrnl.replay_journal(path)
    if args.journal_command == "summary":
        progress = jrnl.progress_from_state(state)
        if args.as_json:
            _json_out(jrnl.progress_to_dict(progress))
        else:
            _console.out(jrnl.render_progress(progress))
        return 0
    if args.journal_command == "report":
        report = jrnl.analyze_state(
            state,
            straggler_z=args.straggler_z,
            storm_fraction=args.storm_fraction,
            collapse_drop=args.collapse_drop,
        )
        if args.as_json:
            _json_out(jrnl.report_to_dict(report))
        else:
            _console.out(jrnl.render_report(report))
        if not report.clean and args.fail_on_anomaly:
            return 1
        return 0
    raise AssertionError(f"unhandled journal command {args.journal_command!r}")


def _cmd_trace_export(args) -> int:
    """Convert a journal and/or telemetry export into a Chrome trace."""
    if not args.journal and not args.telemetry:
        _console.error("trace export needs --journal and/or --telemetry")
        return 1
    journal_events = None
    if args.journal:
        journal_events = jrnl.read_events(args.journal)
    telemetry_export = None
    if args.telemetry:
        telemetry_export = json.loads(Path(args.telemetry).read_text())
    trace = jrnl.chrome_trace(
        journal_events=journal_events, telemetry_export=telemetry_export
    )
    problems = jrnl.validate_trace(trace)
    if problems:
        for problem in problems:
            _console.error(f"trace export: {problem}")
        return 1
    text = json.dumps(trace, indent=2, sort_keys=True) + "\n"
    if args.output:
        from .serialization import atomic_write_text

        atomic_write_text(Path(args.output), text)
        _console.status(
            f"trace written to {args.output} "
            f"({len(trace['traceEvents'])} events; open in ui.perfetto.dev)"
        )
    else:
        _console.out(text)
    return 0


def _bench_store(history: Optional[str]):
    from .perfwatch import DEFAULT_HISTORY_DIR, HistoryStore

    return HistoryStore(history or DEFAULT_HISTORY_DIR)


def _bench_discover(bench_dir: Optional[str]):
    """Populate the registry from bench scripts; report per-file failures."""
    from . import perfwatch as pw

    directory = Path(bench_dir) if bench_dir else None
    found, errors = pw.discover(directory)
    for file_name, message in errors:
        _console.error(f"perf-watch: skipping {file_name}: {message}")
    return found


def _cmd_bench_list(bench_dir: Optional[str]) -> int:
    scenarios = _bench_discover(bench_dir)
    rows = []
    for scn in scenarios:
        metrics = ", ".join(scn.metric_names()) or "-"
        rows.append(
            [scn.scenario_id, scn.tier, scn.repeats, metrics, scn.description]
        )
    _console.out(
        render_table(
            ["scenario", "tier", "repeats", "derived metrics", "description"],
            rows,
            title=f"perf-watch scenarios: {len(scenarios)} registered",
            align_right_from=99,
        )
    )
    return 0


def _cmd_bench_run(args) -> int:
    from . import perfwatch as pw

    scenarios = _bench_discover(args.bench_dir)
    if args.scenario:
        selected = [pw.get_scenario(scenario_id) for scenario_id in args.scenario]
    elif args.quick:
        selected = [s for s in scenarios if s.tier == "quick"]
    else:
        selected = scenarios
    if not selected:
        _console.error("perf-watch: no scenarios selected")
        return 1
    store = _bench_store(args.history)

    def execute():
        rows = []
        regressions = []
        for scn in selected:
            _console.status(f"bench {scn.scenario_id} ({scn.tier}) ...")
            record = pw.run_scenario(
                scn,
                repeats=args.repeats or None,
                profile=args.profile,
                profile_top=args.profile_top,
            )
            verdicts = pw.classify_record(store.records(scn.scenario_id), record)
            verdict = pw.overall_verdict(verdicts)
            if verdict is pw.Verdict.REGRESSED:
                regressions.append(scn.scenario_id)
            key = pw.record_key(record)
            if not args.no_record:
                store.append(record)
            rows.append(
                [
                    scn.scenario_id,
                    scn.tier,
                    record.repeats,
                    f"{record.wall_best_s:.4f}",
                    key[:12],
                    str(verdict),
                ]
            )
        return rows, regressions

    if args.telemetry:
        with tele.use(
            tele.TelemetrySession(
                label="bench-run",
                profile=args.profile,
                profile_top=args.profile_top,
            )
        ) as session:
            rows, regressions = execute()
        _write_telemetry(session, args.telemetry)
    else:
        rows, regressions = execute()

    _console.out(
        render_table(
            ["scenario", "tier", "repeats", "wall best s", "key", "vs baseline"],
            rows,
            title=f"perf-watch run: {len(selected)} scenarios",
            align_right_from=2,
        )
    )
    if not args.no_record:
        paths = [
            store.write_trajectory(scn.scenario_id, args.trajectory_dir)
            for scn in selected
        ]
        _console.status(
            f"history: {store.root}  |  trajectories: "
            + ", ".join(p.name for p in paths)
        )
    if regressions:
        _console.status(
            "regressions vs recorded baseline: " + ", ".join(regressions)
        )
    return 0


def _cmd_bench_report(args) -> int:
    from . import perfwatch as pw

    store = _bench_store(args.history)
    ids = args.scenario or store.scenario_ids()
    if not ids:
        _console.status(f"perf-watch: no history under {store.root}")
        if args.as_json:
            _json_out(pw.report_to_dict([]))
        else:
            _console.out(pw.render_report([]))
        return 0
    reports = pw.build_report(
        store,
        scenario_ids=ids,
        window=args.window,
        min_effect=args.min_effect,
    )
    if args.as_json:
        _json_out(pw.report_to_dict(reports))
    else:
        _console.out(pw.render_report(reports))
    regressed = [
        r.scenario_id for r in reports if r.verdict is pw.Verdict.REGRESSED
    ]
    if regressed:
        _console.status("regressed: " + ", ".join(regressed))
        if args.fail_on_regression:
            return 1
    return 0


def _cmd_bench_compare(args) -> int:
    from . import perfwatch as pw

    store = _bench_store(args.history)
    keys = store.keys(args.scenario)
    if not keys:
        _console.error(f"perf-watch: no history for scenario {args.scenario!r}")
        return 1
    if len(keys) < 2 and not (args.base and args.new):
        _console.error(
            f"perf-watch: scenario {args.scenario!r} has only one record; "
            "nothing to compare"
        )
        return 1
    base_key = args.base or keys[-2]
    new_key = args.new or keys[-1]
    _console.out(pw.render_compare(store.get(base_key), store.get(new_key)))
    _console.out()
    _console.out(
        pw.render_trajectory(store.records(args.scenario), metric=args.metric)
    )
    return 0


def _cmd_bench(args) -> int:
    if args.bench_command == "run":
        return _cmd_bench_run(args)
    if args.bench_command == "list":
        return _cmd_bench_list(args.bench_dir)
    if args.bench_command == "report":
        return _cmd_bench_report(args)
    if args.bench_command == "compare":
        return _cmd_bench_compare(args)
    raise AssertionError(f"unhandled bench command {args.bench_command!r}")


def _cmd_sensitivity() -> int:
    from .analysis import WeightSensitivity, dominant_benchmark
    from .core import TGICalculator
    from .experiments import build_reference, build_suite, build_executor

    reference, _ = build_reference(PAPER_CONFIG)
    executor = build_executor(PAPER_CONFIG)
    suite = build_suite(PAPER_CONFIG)
    result = suite.run(executor, executor.cluster.total_cores)
    tgi = TGICalculator(reference).compute(result)
    sens = WeightSensitivity(ree=tgi.ree, steps=20)
    lo, hi = sens.tgi_range()
    w_lo, w_hi = sens.extremes()
    _console.out(f"REE at {result.cores} cores: "
                 + ", ".join(f"{k}={v:.3f}" for k, v in sorted(tgi.ree.items())))
    _console.out(f"TGI(arithmetic mean) = {tgi.value:.4f}")
    _console.out(f"TGI range over all valid weightings: [{lo:.4f}, {hi:.4f}]")
    _console.out(f"  minimized by weighting {dominant_benchmark(w_lo)} alone")
    _console.out(f"  maximized by weighting {dominant_benchmark(w_hi)} alone")
    return 0


def _cmd_archive(output: str) -> int:
    from .serialization import (
        reference_to_dict,
        save_json,
        sweep_result_to_dict,
    )

    context = SharedContext()
    archive = {
        "format_version": 1,
        "reference": reference_to_dict(context.reference),
        "sweep": sweep_result_to_dict(context.sweep),
    }
    save_json(archive, output)
    _console.status(f"campaign archived to {output}")
    return 0


#: ``--inject`` kinds -> FaultPlan field updates (VALUE semantics per kind).
_FAULT_KIND_FIELDS = {
    "transient": ("transient_failures", int, 1),
    "flaky": ("transient_probability", float, 1.0),
    "meter-dropout": ("meter_dropout", float, 0.5),
    "node-crash": ("node_crash_probability", float, 1.0),
    "benchmark-crash": ("node_crash_probability", float, 1.0),
}


def _parse_fault_specs(specs, fault_seed: int):
    """``--inject`` specs -> ``{job_id: FaultPlan}``.

    Multiple specs naming one job compose into a single plan;
    ``benchmark-crash`` additionally switches the plan's containment so
    the crash fails individual benchmarks instead of the whole job.
    """
    from .faults import plan_from_dict, plan_to_dict

    plans = {}
    for spec in specs:
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            raise ReproError(
                f"bad --inject spec {spec!r}; expected JOB:KIND[:VALUE]"
            )
        job_id, kind = parts[0], parts[1]
        if kind not in _FAULT_KIND_FIELDS:
            raise ReproError(
                f"unknown fault kind {kind!r} in --inject {spec!r}; "
                f"kinds: {sorted(_FAULT_KIND_FIELDS)}"
            )
        field_name, cast, default = _FAULT_KIND_FIELDS[kind]
        try:
            value = cast(parts[2]) if len(parts) == 3 else default
        except ValueError:
            raise ReproError(
                f"bad value {parts[2]!r} for {kind} in --inject {spec!r}"
            ) from None
        base = plans.get(job_id)
        data = plan_to_dict(base) if base else {}
        data[field_name] = value
        data["seed"] = fault_seed
        if kind == "benchmark-crash":
            data["containment"] = "benchmark"
        plans[job_id] = plan_from_dict(data)
    return plans


def _campaign_tgi_summary(result) -> None:
    """Print a coverage-annotated TGI table for the surviving jobs.

    Requires an ok ``reference`` job; each other surviving job contributes
    its final scale point.  Partial suite points (benchmarks lost to
    contained faults) produce degraded TGIs, flagged in the table and on
    stderr so they are never mistaken for full ones.
    """
    from .core import ReferenceSet

    by_id = {o.job.job_id: o for o in result}
    ref_outcome = by_id.get("reference")
    if ref_outcome is None or not ref_outcome.ok:
        _console.status("no surviving reference job; skipping the TGI summary")
        return
    reference = ReferenceSet.from_suite_result(
        result.suite("reference"),
        system_name=ref_outcome.payload["cluster_name"],
    )
    calculator = TGICalculator(reference, allow_partial=True)
    rows = []
    degraded = []
    for outcome in result:
        if not outcome.ok or outcome.job.job_id == "reference":
            continue
        suite_point = outcome.sweep.suites[-1]
        try:
            tgi = calculator.compute(suite_point)
        except ReproError as exc:
            _console.status(f"TGI skipped for {outcome.job.job_id}: {exc}")
            continue
        coverage = "full" if tgi.complete else f"{tgi.coverage:.0%}"
        if not tgi.complete:
            degraded.append((outcome.job.job_id, tgi))
        rows.append(
            [
                outcome.job.job_id,
                outcome.payload["cluster_name"],
                suite_point.cores,
                f"{tgi.value:.4f}",
                coverage,
            ]
        )
    if not rows:
        return
    _console.out()
    _console.out(
        render_table(
            ["job", "system", "cores", "TGI", "coverage"],
            rows,
            title=f"TGI vs {reference.system_name} (arithmetic-mean weights)",
            align_right_from=2,
        )
    )
    for job_id, tgi in degraded:
        _console.error(
            f"warning: TGI for {job_id} is degraded — {tgi.coverage:.0%} "
            f"coverage, missing {', '.join(tgi.missing)}; weights were "
            "renormalized over the survivors"
        )


def _cmd_campaign(
    workers: int,
    cache_dir: Optional[str],
    manifest_path: Optional[str],
    fleet: int,
    era: str,
    fleet_seed: int,
    telemetry: Optional[str] = None,
    retries: int = 0,
    retry_backoff: float = 0.0,
    keep_going: bool = False,
    inject=(),
    fault_seed: int = 0,
    journal: Optional[str] = None,
    timeline: Optional[str] = None,
    shards: int = 0,
    resume: Optional[str] = None,
) -> int:
    import dataclasses

    from .campaign import (
        CampaignRunner,
        ResultCache,
        ShardedCampaignScheduler,
        fleet_jobs,
        paper_jobs,
    )
    from .telemetry import attribution_to_dicts, campaign_attribution, render_attribution

    jobs = paper_jobs(PAPER_CONFIG)
    if fleet:
        jobs += fleet_jobs(fleet, era=era, fleet_seed=fleet_seed)
    plans = _parse_fault_specs(inject, fault_seed)
    if plans:
        known = {job.job_id for job in jobs}
        unknown = sorted(set(plans) - known)
        if unknown:
            raise ReproError(
                f"--inject names unknown job(s) {unknown}; campaign has {sorted(known)}"
            )
        jobs = [
            dataclasses.replace(job, faults=plans[job.job_id])
            if job.job_id in plans
            else job
            for job in jobs
        ]
        _console.status(
            "fault injection armed: "
            + ", ".join(f"{jid} <- {plans[jid]}" for jid in sorted(plans))
        )
    if resume is not None:
        if not cache_dir:
            raise ReproError(
                "--resume requires --cache-dir: recovery skips jobs whose "
                "results survive in the shared cache"
            )
        if journal is not None and journal != resume:
            raise ReproError(
                f"--journal {journal!r} conflicts with --resume {resume!r}; "
                "a resumed run extends the journal it resumes from "
                "(drop --journal or pass the same path)"
            )
        journal = resume
    cache = ResultCache(cache_dir) if cache_dir else None
    sharded = bool(shards) or resume is not None
    if sharded:
        runner = ShardedCampaignScheduler(
            workers=workers,
            shards=shards,
            cache=cache,
            retries=retries,
            keep_going=keep_going,
            backoff_s=retry_backoff,
            backoff_seed=fault_seed,
            journal=journal,
            timeline=timeline,
        )
    else:
        runner = CampaignRunner(
            workers=workers,
            cache=cache,
            retries=retries,
            keep_going=keep_going,
            backoff_s=retry_backoff,
            backoff_seed=fault_seed,
            journal=journal,
            timeline=timeline,
        )
    if resume is not None:
        _console.status(f"resuming campaign from journal: {resume}")
    if journal:
        _console.status(
            f"flight recorder armed: {journal} (follow with `tgi watch {journal}`)"
        )
    if timeline:
        _console.status(
            f"timeline capture armed: {timeline} "
            f"(render with `tgi dashboard --timeline {timeline}`)"
        )

    run_kwargs = {"label": "cli-campaign"}
    if sharded:
        run_kwargs["resume"] = resume is not None
    session = None
    if telemetry:
        with tele.use(tele.TelemetrySession(label="cli-campaign")) as session:
            result = runner.run(jobs, **run_kwargs)
    else:
        result = runner.run(jobs, **run_kwargs)

    rows = []
    for outcome in result:
        error = outcome.error or {}
        rows.append(
            [
                outcome.job.job_id,
                outcome.payload["cluster_name"] if outcome.ok else "-",
                len(outcome.job.core_counts) or 1,
                outcome.status,
                outcome.cache_status,
                outcome.attempts,
                f"{outcome.wall_s:.3f}",
                outcome.key[:12] if outcome.ok else error.get("type", "?"),
            ]
        )
    _console.out(
        render_table(
            ["job", "system", "points", "status", "cache", "tries", "wall s", "key/error"],
            rows,
            title=f"Campaign: {len(jobs)} jobs, workers={workers}",
            align_right_from=2,
        )
    )
    manifest = result.manifest
    stats = result.cache_stats
    failures = manifest["failures"]
    _console.status(
        f"\ntotal wall: {manifest['total_wall_s']:.2f} s  |  "
        f"cache: {stats['hits']}/{stats['jobs']} hits "
        f"({100 * stats['hit_rate']:.0f}%)"
        + (f"  |  dir: {cache_dir}" if cache_dir else "  (caching disabled)")
    )
    if failures["jobs_failed"] or failures["retries_total"]:
        _console.status(
            f"failures: {failures['jobs_failed']} job(s) failed, "
            f"{failures['jobs_retried']} retried "
            f"({failures['retries_total']} extra attempt(s), "
            f"{retries} allowed per job)"
        )
    if cache is not None:
        cstats = cache.cache_stats
        _console.status(
            f"cache accounting: {cstats['hits']} hits, {cstats['misses']} misses, "
            f"{cstats['invalidations']} invalidations, {cstats['puts']} writes"
        )
    _console.out(f"manifest fingerprint: {manifest['fingerprint'][:16]}")
    journal_block = manifest.get("journal")
    if journal_block:
        _console.status(
            f"journal: {journal_block['path']} ({journal_block['events']} events, "
            f"sha256 {str(journal_block['sha256'])[:12]})"
        )
    timeline_block = manifest.get("timeline")
    if timeline_block:
        _console.status(
            f"timelines: {timeline_block['artifacts']} artifact(s) in "
            f"{timeline_block['dir']}"
        )
    sharding_block = manifest.get("sharding")
    if sharding_block:
        _console.status(
            f"sharding: {sharding_block['shards']} shard(s) over "
            f"{sharding_block['transport']} transport, "
            f"{sharding_block['stolen']} job(s) stolen"
            + (
                f", {sharding_block['jobs_recovered']} recovered on resume"
                if sharding_block.get("resumed")
                else ""
            )
        )
    if manifest_path:
        result.write_manifest(manifest_path)
        _console.status(f"manifest written to {manifest_path}")
    _campaign_tgi_summary(result)
    if session is not None:
        attribution = campaign_attribution(result)
        _console.out()
        _console.out(render_attribution(attribution))
        _write_telemetry(
            session, telemetry, attribution=attribution_to_dicts(attribution)
        )
    if result.failed:
        _console.error(
            f"campaign finished with {len(result.failed)} failed job(s): "
            + ", ".join(o.job.job_id for o in result.failed)
        )
        return 3
    return 0


def _parse_reference_spec(spec: str):
    """``PRESET[:NODES]`` -> a reference ClusterRef."""
    from .campaign import ClusterRef

    name, sep, nodes = spec.partition(":")
    num_nodes = 0
    if sep:
        try:
            num_nodes = int(nodes)
        except ValueError:
            raise ReproError(
                f"--reference node count {nodes!r} is not an integer"
            ) from None
    return ClusterRef(kind="preset", name=name, num_nodes=num_nodes)


def _cmd_fleet_rank(args) -> int:
    from .fleet import FleetRankingPipeline, generated_fleet_members, parse_weight_spec

    if args.count < 1:
        raise ReproError(f"--count must be >= 1, got {args.count}")
    weights = parse_weight_spec(args.weights) if args.weights else None
    pipeline = FleetRankingPipeline(
        reference=_parse_reference_spec(args.reference),
        reference_suite=args.reference_suite,
        weights=weights,
        path=args.path,
        full_sim=args.full_sim,
        chunk_size=args.chunk_size,
        workers=args.workers,
        shards=args.shards,
        cache_dir=args.cache_dir,
        journal=args.journal,
        timeline=args.timeline,
    )
    members = generated_fleet_members(
        args.count, era=args.era, fleet_seed=args.fleet_seed
    )
    _console.status(
        f"ranking a fleet of {args.count} {args.era}-era machines "
        + ("through the campaign executors..." if args.full_sim else "on the batched analytic path...")
    )
    session = None
    if args.telemetry:
        with tele.use(tele.TelemetrySession(label="fleet-rank")) as session:
            ranking = pipeline.rank(members, label="fleet-rank")
    else:
        ranking = pipeline.rank(members, label="fleet-rank")

    if args.json:
        _json_out(ranking.as_dict())
    else:
        shown = ranking.rows if args.top == 0 else ranking.rows[: args.top]
        rows = []
        for row in shown:
            move = row.moved
            arrow = f"{'+' if move > 0 else ''}{move}" if move else "="
            rows.append(
                [
                    row.tgi_rank,
                    row.name,
                    f"{row.tgi:.3f}",
                    f"{row.flops_per_watt / 1e6:.0f}",
                    row.flops_rank,
                    arrow,
                    row.weakest,
                ]
            )
        _console.out(
            render_table(
                ["TGI rank", "System", "TGI", "MFLOPS/W", "FLOPS/W rank", "moved", "weakest"],
                rows,
                title=f"Fleet of {len(ranking)} ranked by TGI vs {ranking.reference_name}",
                align_right_from=2,
            )
        )
        if len(shown) < len(ranking):
            _console.status(f"... {len(ranking) - len(shown)} more rows (--top 0 shows all)")
    stats = ranking.stats
    memo = stats["memo_unique"]
    shared = (
        f", memoized to {max(memo.values())} unique evaluations"
        if stats["batched"] and max(memo.values()) < stats["batched"]
        else ""
    )
    _console.status(
        f"\n{stats['systems']} systems in {stats['wall_s']:.2f} s "
        f"({stats['batched']} batched, {stats['simulated']} simulated{shared})"
        + (f", {stats['cache_hits']} cache hits" if stats["cache_hits"] else "")
    )
    diag = ranking.diagnostics
    if diag.spearman_rho is not None:
        line = f"rank agreement FLOPS/W vs TGI: Spearman {diag.spearman_rho:.3f}"
        if diag.pearson_ci is not None:
            line += (
                f"; PCC {diag.pearson_ci.estimate:.3f} "
                f"[{diag.pearson_ci.low:.3f}, {diag.pearson_ci.high:.3f}] "
                f"@ {diag.pearson_ci.confidence:.0%}"
            )
        _console.status(line)
    if diag.tgi_mean_ci is not None:
        _console.status(
            f"fleet TGI mean {diag.tgi_mean_ci.estimate:.3f} "
            f"[{diag.tgi_mean_ci.low:.3f}, {diag.tgi_mean_ci.high:.3f}]"
        )
    for note in diag.notes:
        _console.status(f"note: {note}")
    if args.journal:
        _console.status(f"journal: {args.journal}")
    if session is not None:
        _write_telemetry(session, args.telemetry)
    return 0


def _cmd_dashboard(args) -> int:
    """`tgi dashboard` — render timeline artifacts into one HTML file.

    The output is fully self-contained (inline CSS, inline SVG, no
    scripts, no network fetches): open it from disk, attach it to a CI
    run, or mail it around.  Inputs beyond ``--timeline`` are optional
    overlays — a campaign manifest, a run journal, perf-watch
    trajectories — each summarized into its own section when given.
    """
    from . import timeline as tline

    artifacts = tline.load_artifacts(args.timeline)
    _console.status(
        f"dashboard: {len(artifacts)} artifact(s) from {args.timeline}"
    )
    manifest = None
    if args.manifest:
        from .campaign import load_manifest

        manifest = load_manifest(args.manifest)
    journal_text = None
    if args.journal:
        journal_path = Path(args.journal)
        if not journal_path.exists():
            _console.error(f"no journal at {journal_path}")
            return 1
        state = jrnl.replay_journal(journal_path)
        journal_text = jrnl.render_progress(jrnl.progress_from_state(state))
    perfwatch = None
    if args.perfwatch_dir:
        perfwatch = []
        for path in sorted(Path(args.perfwatch_dir).glob("BENCH_*.json")):
            try:
                perfwatch.append(json.loads(path.read_text()))
            except (OSError, ValueError) as exc:
                _console.error(f"dashboard: skipping {path.name}: {exc}")
    html_text = tline.render_dashboard(
        artifacts,
        title=args.title,
        manifest=manifest,
        journal_text=journal_text,
        perfwatch=perfwatch,
    )
    audits_failed = sum(
        1 for doc in artifacts for run in doc["runs"] if not run["audit"]["ok"]
    )
    if audits_failed:
        _console.error(
            f"warning: {audits_failed} run timeline(s) failed the "
            "energy-conservation audit"
        )
    if args.output:
        from .serialization import atomic_write_text

        atomic_write_text(Path(args.output), html_text)
        _console.status(f"dashboard written to {args.output}")
    else:
        _console.out(html_text)
    return 0


_PROFILE_BY_FLAG = {
    "cfd": "CFD_PROFILE",
    "genomics": "GENOMICS_PROFILE",
    "checkpoint": "CHECKPOINT_HEAVY_PROFILE",
    "dense-linalg": "DENSE_LINALG_PROFILE",
}


def _cmd_rank(cores: int, profile: Optional[str] = None) -> int:
    from . import core
    from .experiments import build_reference

    systems = [presets.fire(), presets.system_g(), presets.gpu_cluster(), presets.modern_cluster()]
    reference, _ = build_reference(PAPER_CONFIG)
    if profile is None:
        calculator = TGICalculator(reference)
    else:
        app_profile = getattr(core, _PROFILE_BY_FLAG[profile])
        calculator = TGICalculator(
            reference, weighting=core.WorkloadWeights(app_profile)
        )
        _console.status(f"weights derived from profile: {app_profile.name}")
    entries = []
    for cluster in systems:
        executor = ClusterExecutor(cluster, rng=PAPER_CONFIG.fire_seed)
        suite = build_suite(PAPER_CONFIG, reference=True)
        n = cores or cluster.total_cores
        n = min(n, cluster.total_cores)
        entries.append((cluster.name, suite.run(executor, n)))
    _console.out(format_ranking(rank_systems(entries, calculator)))
    return 0


def _cmd_specs() -> int:
    rows = []
    for factory in (presets.fire, presets.system_g, presets.gpu_cluster, presets.modern_cluster):
        cluster = factory()
        rows.append(
            [
                cluster.name,
                cluster.num_nodes,
                cluster.total_cores,
                format_flops(cluster.total_peak_flops),
                format_bytes(cluster.total_memory_bytes),
                format_power(cluster.nominal_idle_watts),
                format_power(cluster.nominal_max_watts),
            ]
        )
    _console.out(
        render_table(
            ["System", "Nodes", "Cores", "Peak", "Memory", "Idle (DC)", "Max (DC)"],
            rows,
            title="Preset systems",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Exit codes: 0 success; 1 a library error (:class:`ReproError` — one
    line on stderr, no traceback); 2 argparse usage errors; 3 a campaign
    that completed under ``--keep-going`` but lost jobs; 130 interrupted.
    A downstream pipe closing early (``tgi tail run.jsonl | head``) exits
    0, not with a traceback.
    """
    args = build_parser().parse_args(argv)
    _console.quiet = args.quiet
    try:
        return _dispatch(args)
    except KeyboardInterrupt:
        _console.error("interrupted")
        return 130
    except BrokenPipeError:
        # The reader went away mid-stream; stop quietly. Point stdout at
        # devnull so interpreter shutdown doesn't re-raise on flush.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except ReproError as exc:
        _console.error(f"error: {exc}")
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    """Route parsed arguments to their command handler."""
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(
            args.experiment,
            plot=args.plot,
            telemetry=args.telemetry,
            journal=args.journal,
        )
    if args.command == "rank":
        return _cmd_rank(args.cores, args.profile)
    if args.command == "specs":
        return _cmd_specs()
    if args.command == "suite":
        return _cmd_suite(args.system, args.cores, args.breakdown, args.engine)
    if args.command == "sensitivity":
        return _cmd_sensitivity()
    if args.command == "archive":
        return _cmd_archive(args.output)
    if args.command == "campaign":
        return _cmd_campaign(
            args.workers,
            args.cache_dir,
            args.manifest,
            args.fleet,
            args.era,
            args.fleet_seed,
            telemetry=args.telemetry,
            retries=args.retries,
            retry_backoff=args.retry_backoff,
            keep_going=args.keep_going,
            inject=args.inject,
            fault_seed=args.fault_seed,
            journal=args.journal,
            timeline=args.timeline,
            shards=args.shards,
            resume=args.resume,
        )
    if args.command == "fleet":
        return _cmd_fleet_rank(args)
    if args.command == "dashboard":
        return _cmd_dashboard(args)
    if args.command == "trace":
        if getattr(args, "trace_command", None) == "export":
            return _cmd_trace_export(args)
        return _cmd_trace(args.input, args.system, args.cores, args.top, args.engine)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "tail":
        return _cmd_tail(args)
    if args.command == "journal":
        return _cmd_journal(args)
    if args.command == "bench":
        return _cmd_bench(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
