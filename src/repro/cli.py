"""Command-line interface.

::

    tgi list                     # available experiments
    tgi run fig5                 # regenerate one figure/table
    tgi run all                  # regenerate everything
    tgi rank                     # TGI ranking of the preset systems
    tgi specs                    # print the preset system spec sheets
    tgi campaign --workers 4     # parallel, cached measurement campaign

Also reachable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .analysis.tables import render_table
from .benchmarks import BenchmarkSuite
from .cluster import presets
from .core import TGICalculator, format_ranking, rank_systems
from .experiments import (
    EXPERIMENTS,
    PAPER_CONFIG,
    SharedContext,
    build_suite,
    get_experiment,
)
from .sim import ClusterExecutor
from .units import format_bytes, format_flops, format_power

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="tgi",
        description="The Green Index (TGI) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run an experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (fig2..fig6, table1, table2) or 'all'")
    run.add_argument(
        "--plot", action="store_true", help="also render figure series as ASCII charts"
    )

    rank = sub.add_parser("rank", help="rank the preset systems by TGI")
    rank.add_argument(
        "--cores",
        type=int,
        default=0,
        help="core count to benchmark each system at (default: each system's full size)",
    )
    rank.add_argument(
        "--profile",
        choices=("cfd", "genomics", "checkpoint", "dense-linalg"),
        default=None,
        help="weight the suite for an application profile instead of equal weights",
    )

    sub.add_parser("specs", help="print the preset system spec sheets")

    suite = sub.add_parser(
        "suite", help="run the suite on one preset system and print the measurements"
    )
    suite.add_argument(
        "--system",
        choices=("fire", "system_g", "gpu_cluster", "modern_cluster"),
        default="fire",
        help="preset system to measure",
    )
    suite.add_argument(
        "--cores", type=int, default=0, help="MPI ranks (default: full machine)"
    )
    suite.add_argument(
        "--breakdown", action="store_true", help="also print the energy attribution"
    )

    sub.add_parser(
        "sensitivity", help="weight-simplex sensitivity of TGI at full scale"
    )

    archive = sub.add_parser(
        "archive", help="run the calibrated campaign and save it as JSON"
    )
    archive.add_argument("output", help="path of the JSON archive to write")

    campaign = sub.add_parser(
        "campaign",
        help="run a measurement campaign through the parallel executor",
    )
    campaign.add_argument(
        "--workers", type=int, default=1, help="process-pool width (1 = serial)"
    )
    campaign.add_argument(
        "--cache-dir",
        default=None,
        help="content-addressed result cache directory (omit to disable caching)",
    )
    campaign.add_argument(
        "--manifest", default=None, help="write the JSON run manifest to this path"
    )
    campaign.add_argument(
        "--fleet",
        type=int,
        default=0,
        help="also measure N generated machines at full scale",
    )
    campaign.add_argument(
        "--era",
        choices=("2008", "2011", "2015", "2021"),
        default="2011",
        help="era template for the generated fleet",
    )
    campaign.add_argument(
        "--fleet-seed", type=int, default=20110615, help="fleet generation seed"
    )
    return parser


def _cmd_list() -> int:
    rows = [[exp_id, entry.description] for exp_id, entry in EXPERIMENTS.items()]
    print(render_table(["id", "description"], rows, align_right_from=99))
    return 0


def _cmd_run(experiment: str, plot: bool = False) -> int:
    context = SharedContext()
    if experiment == "all":
        ids = list(EXPERIMENTS)
    else:
        ids = [experiment]
    for exp_id in ids:
        entry = get_experiment(exp_id)
        result = entry.run(context)
        print(result.format())
        if plot:
            chart = _chart_for(result)
            if chart:
                print()
                print(chart)
        print()
    return 0


def _chart_for(result) -> Optional[str]:
    """ASCII chart for figure results; tables have nothing to plot."""
    from .experiments.curves import EfficiencyCurveResult
    from .experiments.tgi_curves import TGICurveResult, TGIWeightedResult
    from .viz import ascii_chart

    if isinstance(result, EfficiencyCurveResult):
        return ascii_chart(
            {result.benchmark: list(result.efficiency)},
            x=list(result.x),
            title=f"{result.figure} ({result.unit_label})",
            x_label=result.x_label,
            y_label=result.unit_label,
        )
    if isinstance(result, TGICurveResult):
        return ascii_chart(
            {"TGI": result.series.values.tolist()},
            x=list(result.cores),
            title="Figure 5 (TGI, arithmetic mean)",
            x_label="cores",
            y_label="TGI",
        )
    if isinstance(result, TGIWeightedResult):
        return ascii_chart(
            {
                name: series.values.tolist()
                for name, series in result.series_by_weighting.items()
            },
            x=list(result.cores),
            title="Figure 6 (TGI under different weights)",
            x_label="cores",
            y_label="TGI",
        )
    return None


def _cmd_suite(system: str, cores: int, breakdown: bool) -> int:
    from .benchmarks import (
        BenchmarkSuite,
        HPLBenchmark,
        IOzoneBenchmark,
        StreamBenchmark,
    )
    from .core import format_suite_result
    from .units import format_energy

    cluster = getattr(presets, system)()
    executor = ClusterExecutor(cluster, rng=PAPER_CONFIG.fire_seed)
    # capability view: memory-sized HPL with the calibrated comm/contention
    # parameters (consistent with `tgi run capability`)
    suite = BenchmarkSuite(
        [
            HPLBenchmark(
                sizing=("memory", PAPER_CONFIG.hpl_reference_memory_fraction),
                rounds=PAPER_CONFIG.hpl_rounds,
                comm_volume_factor=PAPER_CONFIG.hpl_comm_volume_factor,
                contention_threshold=PAPER_CONFIG.hpl_contention_threshold,
                contention_slope=PAPER_CONFIG.hpl_contention_slope,
            ),
            StreamBenchmark(
                target_seconds=PAPER_CONFIG.stream_target_seconds,
                intensity=PAPER_CONFIG.stream_intensity,
            ),
            IOzoneBenchmark(target_seconds=PAPER_CONFIG.iozone_target_seconds),
        ]
    )
    n = min(cores or cluster.total_cores, cluster.total_cores)
    result = suite.run(executor, n)
    print(format_suite_result(result, title=f"{cluster.name} @ {n} cores"))
    if breakdown:
        print()
        for r in result:
            parts = r.record.energy_breakdown
            total = sum(parts.values())
            line = ", ".join(
                f"{k} {100 * v / total:.0f}%" for k, v in sorted(parts.items())
            )
            print(f"{r.benchmark:13s} {format_energy(total)}: {line}")
    return 0


def _cmd_sensitivity() -> int:
    from .analysis import WeightSensitivity, dominant_benchmark
    from .core import TGICalculator
    from .experiments import build_reference, build_suite, build_executor

    reference, _ = build_reference(PAPER_CONFIG)
    executor = build_executor(PAPER_CONFIG)
    suite = build_suite(PAPER_CONFIG)
    result = suite.run(executor, executor.cluster.total_cores)
    tgi = TGICalculator(reference).compute(result)
    sens = WeightSensitivity(ree=tgi.ree, steps=20)
    lo, hi = sens.tgi_range()
    w_lo, w_hi = sens.extremes()
    print(f"REE at {result.cores} cores: "
          + ", ".join(f"{k}={v:.3f}" for k, v in sorted(tgi.ree.items())))
    print(f"TGI(arithmetic mean) = {tgi.value:.4f}")
    print(f"TGI range over all valid weightings: [{lo:.4f}, {hi:.4f}]")
    print(f"  minimized by weighting {dominant_benchmark(w_lo)} alone")
    print(f"  maximized by weighting {dominant_benchmark(w_hi)} alone")
    return 0


def _cmd_archive(output: str) -> int:
    from .serialization import (
        reference_to_dict,
        save_json,
        sweep_result_to_dict,
    )

    context = SharedContext()
    archive = {
        "format_version": 1,
        "reference": reference_to_dict(context.reference),
        "sweep": sweep_result_to_dict(context.sweep),
    }
    save_json(archive, output)
    print(f"campaign archived to {output}")
    return 0


def _cmd_campaign(
    workers: int,
    cache_dir: Optional[str],
    manifest_path: Optional[str],
    fleet: int,
    era: str,
    fleet_seed: int,
) -> int:
    from .campaign import CampaignRunner, ResultCache, fleet_jobs, paper_jobs

    jobs = paper_jobs(PAPER_CONFIG)
    if fleet:
        jobs += fleet_jobs(fleet, era=era, fleet_seed=fleet_seed)
    cache = ResultCache(cache_dir) if cache_dir else None
    runner = CampaignRunner(workers=workers, cache=cache)
    result = runner.run(jobs, label="cli-campaign")

    rows = []
    for outcome in result:
        rows.append(
            [
                outcome.job.job_id,
                outcome.payload["cluster_name"],
                len(outcome.job.core_counts) or 1,
                outcome.cache_status,
                f"{outcome.wall_s:.3f}",
                outcome.key[:12],
            ]
        )
    print(
        render_table(
            ["job", "system", "points", "cache", "wall s", "key"],
            rows,
            title=f"Campaign: {len(jobs)} jobs, workers={workers}",
            align_right_from=2,
        )
    )
    manifest = result.manifest
    run_stats = manifest["cache_run"]
    print(
        f"\ntotal wall: {manifest['total_wall_s']:.2f} s  |  "
        f"cache: {run_stats['hits']}/{run_stats['jobs']} hits "
        f"({100 * run_stats['hit_rate']:.0f}%)"
        + (f"  |  dir: {cache_dir}" if cache_dir else "  (caching disabled)")
    )
    if cache is not None:
        stats = cache.stats.as_dict()
        print(
            f"cache accounting: {stats['hits']} hits, {stats['misses']} misses, "
            f"{stats['invalidations']} invalidations, {stats['puts']} writes"
        )
    print(f"manifest fingerprint: {manifest['fingerprint'][:16]}")
    if manifest_path:
        result.write_manifest(manifest_path)
        print(f"manifest written to {manifest_path}")
    return 0


_PROFILE_BY_FLAG = {
    "cfd": "CFD_PROFILE",
    "genomics": "GENOMICS_PROFILE",
    "checkpoint": "CHECKPOINT_HEAVY_PROFILE",
    "dense-linalg": "DENSE_LINALG_PROFILE",
}


def _cmd_rank(cores: int, profile: Optional[str] = None) -> int:
    from . import core
    from .experiments import build_reference

    systems = [presets.fire(), presets.system_g(), presets.gpu_cluster(), presets.modern_cluster()]
    reference, _ = build_reference(PAPER_CONFIG)
    if profile is None:
        calculator = TGICalculator(reference)
    else:
        app_profile = getattr(core, _PROFILE_BY_FLAG[profile])
        calculator = TGICalculator(
            reference, weighting=core.WorkloadWeights(app_profile)
        )
        print(f"weights derived from profile: {app_profile.name}")
    entries = []
    for cluster in systems:
        executor = ClusterExecutor(cluster, rng=PAPER_CONFIG.fire_seed)
        suite = build_suite(PAPER_CONFIG, reference=True)
        n = cores or cluster.total_cores
        n = min(n, cluster.total_cores)
        entries.append((cluster.name, suite.run(executor, n)))
    print(format_ranking(rank_systems(entries, calculator)))
    return 0


def _cmd_specs() -> int:
    rows = []
    for factory in (presets.fire, presets.system_g, presets.gpu_cluster, presets.modern_cluster):
        cluster = factory()
        rows.append(
            [
                cluster.name,
                cluster.num_nodes,
                cluster.total_cores,
                format_flops(cluster.total_peak_flops),
                format_bytes(cluster.total_memory_bytes),
                format_power(cluster.nominal_idle_watts),
                format_power(cluster.nominal_max_watts),
            ]
        )
    print(
        render_table(
            ["System", "Nodes", "Cores", "Peak", "Memory", "Idle (DC)", "Max (DC)"],
            rows,
            title="Preset systems",
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment, plot=args.plot)
    if args.command == "rank":
        return _cmd_rank(args.cores, args.profile)
    if args.command == "specs":
        return _cmd_specs()
    if args.command == "suite":
        return _cmd_suite(args.system, args.cores, args.breakdown)
    if args.command == "sensitivity":
        return _cmd_sensitivity()
    if args.command == "archive":
        return _cmd_archive(args.output)
    if args.command == "campaign":
        return _cmd_campaign(
            args.workers,
            args.cache_dir,
            args.manifest,
            args.fleet,
            args.era,
            args.fleet_seed,
        )
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
