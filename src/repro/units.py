"""Unit conventions, conversions, and human-readable formatting.

The library stores quantities in fixed base units and converts only at the
presentation boundary:

==================  ==============  =========================
Quantity            Base unit       Typical presentation
==================  ==============  =========================
time                seconds (s)     s, min, h
power               watts (W)       W, kW
energy              joules (J)      J, kJ, MJ, kWh
compute rate        FLOP/s          GFLOPS, TFLOPS, MFLOPS
bandwidth           bytes/s         MB/s, GB/s
frequency           hertz (Hz)      MHz, GHz
capacity            bytes (B)       GB, GiB
==================  ==============  =========================

The paper reports HPL performance in GFLOPS/TFLOPS, STREAM and IOzone in
"MBPS" (decimal megabytes per second), power in kW, and energy efficiency in
MFLOPS/W or MBPS/W; helpers here produce exactly those presentations.
"""

from __future__ import annotations

import math

__all__ = [
    "KILO", "MEGA", "GIGA", "TERA", "PETA",
    "KIB", "MIB", "GIB", "TIB",
    "JOULES_PER_KWH",
    "flops", "gflops", "tflops", "mflops",
    "bytes_per_second", "mbps", "gbps",
    "watts_to_kilowatts", "joules_to_kwh",
    "si_format", "format_flops", "format_bandwidth", "format_power",
    "format_energy", "format_time", "format_bytes",
]

#: Decimal SI prefixes (used for rates: FLOPS, MB/s -- matching vendor and
#: benchmark reporting conventions).
KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12
PETA = 1e15

#: Binary prefixes (used for memory capacities).
KIB = 1024
MIB = 1024 ** 2
GIB = 1024 ** 3
TIB = 1024 ** 4

#: One kilowatt-hour in joules.
JOULES_PER_KWH = 3.6e6


def flops(value: float) -> float:
    """Identity helper for readability: ``flops(1e9) == 1e9`` FLOP/s."""
    return float(value)


def gflops(value: float) -> float:
    """Convert GFLOPS to base FLOP/s."""
    return float(value) * GIGA


def tflops(value: float) -> float:
    """Convert TFLOPS to base FLOP/s."""
    return float(value) * TERA


def mflops(value: float) -> float:
    """Convert MFLOPS to base FLOP/s."""
    return float(value) * MEGA


def bytes_per_second(value: float) -> float:
    """Identity helper for readability (base bandwidth unit)."""
    return float(value)


def mbps(value: float) -> float:
    """Convert decimal MB/s (the STREAM/IOzone "MBPS") to bytes/s."""
    return float(value) * MEGA


def gbps(value: float) -> float:
    """Convert decimal GB/s to bytes/s."""
    return float(value) * GIGA


def watts_to_kilowatts(value: float) -> float:
    """Convert watts to kilowatts."""
    return float(value) / KILO


def joules_to_kwh(value: float) -> float:
    """Convert joules to kilowatt-hours."""
    return float(value) / JOULES_PER_KWH


_SI_STEPS = (
    (PETA, "P"),
    (TERA, "T"),
    (GIGA, "G"),
    (MEGA, "M"),
    (KILO, "k"),
)


def si_format(value: float, unit: str, *, precision: int = 2) -> str:
    """Format ``value`` with an SI prefix, e.g. ``si_format(1.2e9, "FLOPS")``.

    Values below 1 kilo-unit are printed without a prefix.  Negative values
    keep their sign; non-finite values are printed verbatim.
    """
    if not math.isfinite(value):
        return f"{value} {unit}"
    magnitude = abs(value)
    for step, prefix in _SI_STEPS:
        if magnitude >= step:
            return f"{value / step:.{precision}f} {prefix}{unit}"
    return f"{value:.{precision}f} {unit}"


def format_flops(value: float, *, precision: int = 2) -> str:
    """Format a FLOP/s rate, e.g. ``"901.00 GFLOPS"``."""
    return si_format(value, "FLOPS", precision=precision)


def format_bandwidth(value: float, *, precision: int = 2) -> str:
    """Format a bytes/s bandwidth, e.g. ``"128.00 MB/s"``."""
    return si_format(value, "B/s", precision=precision)


def format_power(value: float, *, precision: int = 2) -> str:
    """Format a power in watts, e.g. ``"1.52 kW"``."""
    return si_format(value, "W", precision=precision)


def format_energy(value: float, *, precision: int = 2) -> str:
    """Format an energy in joules, e.g. ``"3.60 MJ"``."""
    return si_format(value, "J", precision=precision)


def format_time(seconds: float, *, precision: int = 1) -> str:
    """Format a duration: seconds below 2 min, minutes below 2 h, else hours."""
    if not math.isfinite(seconds):
        return f"{seconds} s"
    if abs(seconds) < 120:
        return f"{seconds:.{precision}f} s"
    if abs(seconds) < 7200:
        return f"{seconds / 60:.{precision}f} min"
    return f"{seconds / 3600:.{precision}f} h"


def format_bytes(value: float, *, precision: int = 1) -> str:
    """Format a capacity with binary prefixes, e.g. ``"32.0 GiB"``."""
    if not math.isfinite(value):
        return f"{value} B"
    magnitude = abs(value)
    for step, prefix in ((TIB, "Ti"), (GIB, "Gi"), (MIB, "Mi"), (KIB, "Ki")):
        if magnitude >= step:
            return f"{value / step:.{precision}f} {prefix}B"
    return f"{value:.0f} B"
