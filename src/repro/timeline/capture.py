"""Ambient timeline capture: arm/disarm mirroring the journal's emit path.

The executor's hot path never builds a timeline unless someone is
listening.  The contract is the same one :mod:`repro.journal` uses for
events and :mod:`repro.telemetry` uses for spans:

* **Disarmed** (the default): :func:`capturing` is a single read of a
  module-level global against ``None`` — the executor skips every capture
  branch.  Nothing is allocated, nothing is copied.
* **Armed** (a sink attached via :func:`attach_sink` or the
  :func:`collecting` context manager): the integrators stash *references*
  to the columnar arrays they already computed into a
  :class:`TimelineCapture`, and :meth:`~repro.sim.executor.ClusterExecutor.execute`
  wraps them into a :class:`~repro.timeline.model.RunTimeline` handed to
  the sink.  All derived analysis (component grids, audits, binning) is
  lazy — it runs when an artifact or dashboard asks, not on the sim path.

Pool safety follows the journal: the sink is per-process state; campaign
workers arm their own sink around each job and ship artifacts via files,
never through the global.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..exceptions import TimelineError

__all__ = [
    "TimelineCapture",
    "MemorySink",
    "attach_sink",
    "detach_sink",
    "ambient_sink",
    "capturing",
    "record",
    "collecting",
]


class TimelineCapture:
    """Raw columnar arrays stashed by one power integration.

    The vectorized integrator fills it with references to arrays it
    already owns (O(1) per field); the reference oracle appends per-slice
    scalars and converts on :meth:`finalize_reference`.  Either way the
    result is one flat slice table — ``(start, end, node_row, wall_w)``
    plus one DC-watts column per component — ordered by node row.
    """

    __slots__ = (
        "makespan",
        "nodes_used",
        "idle_nodes",
        "slice_start",
        "slice_end",
        "slice_node",
        "slice_wall_w",
        "components",
        "_ref_rows",
    )

    def __init__(self) -> None:
        self.makespan: float = 0.0
        self.nodes_used: Tuple[int, ...] = ()
        self.idle_nodes: int = 0
        self.slice_start: Optional[np.ndarray] = None
        self.slice_end: Optional[np.ndarray] = None
        self.slice_node: Optional[np.ndarray] = None
        self.slice_wall_w: Optional[np.ndarray] = None
        self.components: Dict[str, np.ndarray] = {}
        self._ref_rows: List[Tuple[float, float, int, float, Dict[str, float]]] = []

    # -- vectorized fill: reference stashes, no copies ------------------
    def set_slices(
        self,
        *,
        start: np.ndarray,
        end: np.ndarray,
        node_row: np.ndarray,
        wall_w: np.ndarray,
        components: Dict[str, np.ndarray],
    ) -> None:
        self.slice_start = start
        self.slice_end = end
        self.slice_node = node_row
        self.slice_wall_w = wall_w
        self.components = components

    # -- reference fill: one row per slice ------------------------------
    def add_slice(
        self,
        t0: float,
        t1: float,
        node_row: int,
        wall_w: float,
        parts: Dict[str, float],
    ) -> None:
        self._ref_rows.append((t0, t1, node_row, wall_w, dict(parts)))

    def finalize_reference(self) -> None:
        """Convert the oracle's appended rows into the columnar form."""
        if not self._ref_rows:
            raise TimelineError("reference capture saw no slices")
        self.slice_start = np.array([r[0] for r in self._ref_rows])
        self.slice_end = np.array([r[1] for r in self._ref_rows])
        self.slice_node = np.array([r[2] for r in self._ref_rows], dtype=np.intp)
        self.slice_wall_w = np.array([r[3] for r in self._ref_rows])
        names = sorted(self._ref_rows[0][4])
        self.components = {
            name: np.array([r[4][name] for r in self._ref_rows]) for name in names
        }
        self._ref_rows = []

    @property
    def filled(self) -> bool:
        return self.slice_start is not None


class MemorySink:
    """Collects every captured :class:`~repro.timeline.model.RunTimeline`."""

    def __init__(self) -> None:
        self.timelines: List[object] = []

    def add(self, timeline: object) -> None:
        self.timelines.append(timeline)


#: The ambient sink.  ``None`` means capture is disarmed — the executor's
#: fast path is exactly one read of this global.
_SINK: Optional[MemorySink] = None


def attach_sink(sink: MemorySink) -> None:
    """Arm timeline capture for this process."""
    global _SINK
    if _SINK is not None:
        raise TimelineError(
            "a timeline sink is already attached; detach it first "
            "(nested collecting() blocks are not supported)"
        )
    _SINK = sink


def detach_sink() -> None:
    """Disarm timeline capture (no-op when already disarmed)."""
    global _SINK
    _SINK = None


def ambient_sink() -> Optional[MemorySink]:
    """The currently attached sink, or ``None``."""
    return _SINK


def capturing() -> bool:
    """Whether a sink is armed (the executor's single disarmed check)."""
    return _SINK is not None


def record(timeline: object) -> None:
    """Hand a finished run timeline to the ambient sink, if any."""
    sink = _SINK
    if sink is None:
        return
    sink.add(timeline)


@contextmanager
def collecting() -> Iterator[List[object]]:
    """Arm capture for the block; yields the list the timelines land in.

    >>> with collecting() as timelines:
    ...     executor.execute(placement, programs)
    >>> timelines[0].energy_j  # doctest: +SKIP
    """
    sink = MemorySink()
    attach_sink(sink)
    try:
        yield sink.timelines
    finally:
        detach_sink()
