"""Anomaly lenses: deterministic screens over one run's power timeline.

Each lens reduces the timeline to one number, compares it against a
threshold, and returns a JSON-friendly dict (``lens``, ``value``,
``threshold``, ``flagged``, ``detail``).  :func:`scan_run` runs all four:

* ``idle_dwell`` — fraction of the makespan the *active* nodes spend
  within a small margin of their idle floor (watts bought, work not
  happening).  The margin is relative to the active nodes' dynamic range
  so a mostly-idle cluster under system metering does not drown the
  signal in its idle-node floor.
* ``psu_saturation`` — fraction of the makespan the active nodes draw
  near their combined wall-power ceiling (thermal/provisioning risk, and
  the region where PSU efficiency curves bite hardest).
* ``power_spike`` — segments where the total exceeds a centered rolling
  median of the uniformly-resampled curve by a large factor; catches
  step anomalies a mean would smear.
* ``meter_drift`` — |measured − true| / true energy: the sampling +
  gain error the 1 Hz wall-plug methodology inherits.  Large drift means
  the reported TGI inputs are suspect.

Everything is a pure function of the timeline — no RNG, no clock — so
the flags are reproducible across runs and machines.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from .model import RunTimeline

__all__ = ["scan_run", "DEFAULT_THRESHOLDS"]

#: Flagging thresholds, overridable per call.
DEFAULT_THRESHOLDS: Dict[str, float] = {
    "idle_dwell": 0.25,        # >25% of the run near the idle floor
    "idle_margin": 0.02,       # "near" = within 2% of the dynamic range
    "psu_saturation": 0.10,    # >10% of the run near the ceiling
    "saturation_level": 0.95,  # "near" = >=95% of max wall power
    "spike_ratio": 1.5,        # >1.5x the rolling median
    "meter_drift": 0.05,       # >5% measured-vs-true energy error
}


def _active_power(timeline: RunTimeline) -> np.ndarray:
    """Total wall watts minus the constant idle-node floor, per segment."""
    return timeline.total_watts - timeline.idle_nodes * timeline.idle_wall_w


def _time_fraction(timeline: RunTimeline, mask: np.ndarray) -> float:
    widths = timeline.total_ends - timeline.total_starts
    return float(widths[mask].sum() / timeline.makespan_s)


def _idle_dwell(timeline: RunTimeline, thresholds: Dict[str, float]) -> Dict:
    active = _active_power(timeline)
    floor = timeline.nodes_active * timeline.idle_wall_w
    dynamic = timeline.nodes_active * (
        timeline.max_node_wall_w - timeline.idle_wall_w
    )
    margin = thresholds["idle_margin"] * dynamic
    value = _time_fraction(timeline, active <= floor + margin)
    return {
        "lens": "idle_dwell",
        "value": value,
        "threshold": thresholds["idle_dwell"],
        "flagged": value > thresholds["idle_dwell"],
        "detail": (
            f"{100 * value:.1f}% of {timeline.makespan_s:.1f}s within "
            f"{100 * thresholds['idle_margin']:.0f}% of the idle floor"
        ),
    }


def _psu_saturation(timeline: RunTimeline, thresholds: Dict[str, float]) -> Dict:
    active = _active_power(timeline)
    ceiling = timeline.nodes_active * timeline.max_node_wall_w
    level = thresholds["saturation_level"]
    value = _time_fraction(timeline, active >= level * ceiling)
    return {
        "lens": "psu_saturation",
        "value": value,
        "threshold": thresholds["psu_saturation"],
        "flagged": value > thresholds["psu_saturation"],
        "detail": (
            f"{100 * value:.1f}% of the run at >={100 * level:.0f}% of the "
            f"{ceiling:.0f}W active-node ceiling"
        ),
    }


def _rolling_median(values: np.ndarray, window: int) -> np.ndarray:
    """Centered rolling median with edge padding (odd ``window``)."""
    half = window // 2
    padded = np.concatenate(
        [np.full(half, values[0]), values, np.full(half, values[-1])]
    )
    windows = np.lib.stride_tricks.sliding_window_view(padded, window)
    return np.median(windows, axis=1)


def _power_spike(timeline: RunTimeline, thresholds: Dict[str, float]) -> Dict:
    # Uniform resampling makes the median window a *time* window rather
    # than a segment-count window (segments have wildly varying widths).
    n = int(min(1024, max(64, 4 * timeline.segments)))
    grid = np.linspace(0.0, timeline.makespan_s, n, endpoint=False)
    idx = np.maximum(
        np.searchsorted(timeline.total_starts, grid, side="right") - 1, 0
    )
    values = timeline.total_watts[idx]
    window = max(5, n // 32) | 1
    median = np.maximum(_rolling_median(values, window), 1e-12)
    ratios = values / median
    spike_ratio = thresholds["spike_ratio"]
    spikes = int(np.count_nonzero(ratios > spike_ratio))
    value = float(ratios.max())
    return {
        "lens": "power_spike",
        "value": value,
        "threshold": spike_ratio,
        "flagged": spikes > 0,
        "detail": (
            f"{spikes} of {n} samples exceed {spike_ratio:.2f}x the rolling "
            f"median (peak ratio {value:.2f}x)"
        ),
    }


def _meter_drift(timeline: RunTimeline, thresholds: Dict[str, float]) -> Dict:
    true = timeline.true_energy_j
    drift = (
        abs(timeline.measured_energy_j - true) / true if true > 0 else 0.0
    )
    return {
        "lens": "meter_drift",
        "value": drift,
        "threshold": thresholds["meter_drift"],
        "flagged": drift > thresholds["meter_drift"],
        "detail": (
            f"meter log integrates to {timeline.measured_energy_j:.1f} J vs "
            f"{true:.1f} J true ({100 * drift:.2f}% drift)"
        ),
    }


def scan_run(
    timeline: RunTimeline,
    thresholds: Optional[Dict[str, float]] = None,
) -> List[Dict]:
    """All four lenses over one run, in a fixed order."""
    merged = dict(DEFAULT_THRESHOLDS)
    if thresholds:
        merged.update(thresholds)
    return [
        _idle_dwell(timeline, merged),
        _psu_saturation(timeline, merged),
        _power_spike(timeline, merged),
        _meter_drift(timeline, merged),
    ]
