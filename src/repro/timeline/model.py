"""The run timeline: struct-of-arrays power curves for one executed run.

A :class:`RunTimeline` holds *references* to the columnar arrays the
integrator already computed — the cluster-total wall curve (the same
arrays the :class:`~repro.power.trace.PiecewisePower` truth adopts), the
per-node-slice table, the per-slice component DC watts, and the meter's
sample log.  Building one is O(1) array stashes plus a handful of scalars,
which is what keeps armed capture off the sim path's critical cost.

Everything derived — the component grid, per-node energies, closure
checks — is computed lazily and cached on first use:

* the **component grid** is the exact union of every slice boundary
  (``np.unique`` over floats the sweep produced — no epsilon snapping, so
  no cross-node boundary shifting), with each component's cluster-wide DC
  watts accumulated by difference arrays;
* **psu_loss** is *defined* on that grid as the sampled total minus the
  component sum, so component closure holds exactly by construction, the
  same way the executor's energy breakdown defines it in joules.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..exceptions import TimelineError
from ..power.trace import PiecewisePower, PowerTrace
from .capture import TimelineCapture

__all__ = ["RunTimeline", "build_run_timeline"]


class RunTimeline:
    """Power timelines and attribution for one executed run."""

    def __init__(
        self,
        *,
        label: str,
        cluster_name: str,
        num_ranks: int,
        num_nodes: int,
        nodes_active: int,
        idle_nodes: int,
        makespan_s: float,
        engine: str,
        integration: str,
        metering: str,
        total_starts: np.ndarray,
        total_ends: np.ndarray,
        total_watts: np.ndarray,
        slice_start: np.ndarray,
        slice_end: np.ndarray,
        slice_node: np.ndarray,
        slice_wall_w: np.ndarray,
        components: Dict[str, np.ndarray],
        idle_wall_w: float,
        max_node_wall_w: float,
        idle_component_w: Dict[str, float],
        meter_times: np.ndarray,
        meter_watts: np.ndarray,
        measured_energy_j: float,
        true_energy_j: float,
        breakdown: Dict[str, float],
    ):
        self.label = label
        self.cluster_name = cluster_name
        self.num_ranks = num_ranks
        self.num_nodes = num_nodes
        self.nodes_active = nodes_active
        self.idle_nodes = idle_nodes
        self.makespan_s = makespan_s
        self.engine = engine
        self.integration = integration
        self.metering = metering
        self.total_starts = total_starts
        self.total_ends = total_ends
        self.total_watts = total_watts
        self.slice_start = slice_start
        self.slice_end = slice_end
        self.slice_node = slice_node
        self.slice_wall_w = slice_wall_w
        self.components = components
        self.idle_wall_w = idle_wall_w
        self.max_node_wall_w = max_node_wall_w
        self.idle_component_w = idle_component_w
        self.meter_times = meter_times
        self.meter_watts = meter_watts
        self.measured_energy_j = measured_energy_j
        self.true_energy_j = true_energy_j
        self.breakdown = dict(breakdown)
        self._grid: Optional[Tuple[np.ndarray, Dict[str, np.ndarray], np.ndarray]] = None

    # -- totals ---------------------------------------------------------
    @property
    def energy_j(self) -> float:
        """Exact integral of the captured total wall curve."""
        return float(
            np.sum((self.total_ends - self.total_starts) * self.total_watts)
        )

    @property
    def mean_power_w(self) -> float:
        return self.energy_j / self.makespan_s

    @property
    def max_power_w(self) -> float:
        return float(self.total_watts.max())

    @property
    def segments(self) -> int:
        return int(self.total_watts.size)

    def total_timeline(self) -> PiecewisePower:
        """The total wall curve as a :class:`PiecewisePower`."""
        return PiecewisePower.from_arrays(
            self.total_starts, self.total_ends, self.total_watts
        )

    def meter_trace(self) -> PowerTrace:
        """The meter's sample log as a :class:`PowerTrace`."""
        return PowerTrace(self.meter_times, self.meter_watts)

    # -- component grid (lazy) ------------------------------------------
    def component_grid(self) -> Tuple[np.ndarray, Dict[str, np.ndarray], np.ndarray]:
        """``(edges, levels, total_on_grid)`` for the component timelines.

        ``edges`` is the exact union of every slice boundary (length
        ``G + 1``); ``levels[name]`` is that component's cluster-wide DC
        watts on each of the ``G`` grid slices (idle nodes included);
        ``total_on_grid`` samples the captured total wall curve on the
        same slices.  ``levels["psu_loss"]`` is the total minus the
        component sum, so the levels sum to the total exactly.
        """
        if self._grid is not None:
            return self._grid
        edges = np.unique(
            np.concatenate(
                [
                    self.slice_start,
                    self.slice_end,
                    self.total_starts,
                    [0.0, self.makespan_s],
                ]
            )
        )
        if edges.size < 2:
            raise TimelineError("degenerate component grid")
        pos0 = np.searchsorted(edges, self.slice_start)
        pos1 = np.searchsorted(edges, self.slice_end)
        levels: Dict[str, np.ndarray] = {}
        for name, dc_watts in self.components.items():
            delta = np.bincount(
                pos0, weights=dc_watts, minlength=edges.size
            ) - np.bincount(pos1, weights=dc_watts, minlength=edges.size)
            level = np.cumsum(delta)[:-1]
            if self.idle_nodes:
                level = level + self.idle_nodes * self.idle_component_w.get(name, 0.0)
            levels[name] = level
        total_idx = np.maximum(
            np.searchsorted(self.total_starts, edges[:-1], side="right") - 1, 0
        )
        total_on_grid = self.total_watts[total_idx]
        component_sum = np.zeros(edges.size - 1)
        for level in levels.values():
            component_sum += level
        levels["psu_loss"] = total_on_grid - component_sum
        self._grid = (edges, levels, total_on_grid)
        return self._grid

    def component_energies(self) -> Dict[str, float]:
        """DC joules per component (plus ``psu_loss``) from the timelines."""
        edges, levels, _ = self.component_grid()
        widths = np.diff(edges)
        return {
            name: float(np.dot(level, widths)) for name, level in levels.items()
        }

    # -- per-node curves ------------------------------------------------
    def node_offsets(self) -> np.ndarray:
        """CSR offsets into the slice table, one span per active node row."""
        return np.searchsorted(
            self.slice_node, np.arange(self.nodes_active + 1)
        )

    def node_energies(self) -> np.ndarray:
        """Exact wall joules per active node row."""
        widths = self.slice_end - self.slice_start
        return np.bincount(
            self.slice_node,
            weights=self.slice_wall_w * widths,
            minlength=self.nodes_active,
        )

    def node_curve(self, node_row: int) -> PiecewisePower:
        """One active node's wall-power curve."""
        if not 0 <= node_row < self.nodes_active:
            raise TimelineError(
                f"node_row {node_row} out of range [0, {self.nodes_active})"
            )
        offsets = self.node_offsets()
        lo, hi = int(offsets[node_row]), int(offsets[node_row + 1])
        return PiecewisePower.from_arrays(
            self.slice_start[lo:hi], self.slice_end[lo:hi], self.slice_wall_w[lo:hi]
        )

    def __repr__(self) -> str:
        return (
            f"RunTimeline({self.label!r}, {self.cluster_name}, "
            f"{self.num_ranks} ranks, {self.segments} segments, "
            f"{self.energy_j:.1f} J)"
        )


def build_run_timeline(
    capture: TimelineCapture,
    *,
    truth: PiecewisePower,
    trace: PowerTrace,
    breakdown: Dict[str, float],
    label: str,
    cluster_name: str,
    num_ranks: int,
    num_nodes: int,
    engine: str,
    integration: str,
    metering: str,
    idle_wall_w: float,
    max_node_wall_w: float,
    idle_component_w: Dict[str, float],
) -> RunTimeline:
    """Wrap a filled :class:`TimelineCapture` into a :class:`RunTimeline`.

    Adopts the truth curve's arrays as the total timeline, so the
    conservation audit's total-vs-truth check is exact by construction.
    O(1) array stashes — the heavy lifting stays lazy.
    """
    if not capture.filled:
        raise TimelineError("capture was never filled by an integration")
    return RunTimeline(
        label=label,
        cluster_name=cluster_name,
        num_ranks=num_ranks,
        num_nodes=num_nodes,
        nodes_active=len(capture.nodes_used),
        idle_nodes=capture.idle_nodes,
        makespan_s=capture.makespan,
        engine=engine,
        integration=integration,
        metering=metering,
        total_starts=truth.starts_array,
        total_ends=truth.ends_array,
        total_watts=truth.watts_array,
        slice_start=capture.slice_start,
        slice_end=capture.slice_end,
        slice_node=capture.slice_node,
        slice_wall_w=capture.slice_wall_w,
        components=capture.components,
        idle_wall_w=idle_wall_w,
        max_node_wall_w=max_node_wall_w,
        idle_component_w=dict(idle_component_w),
        meter_times=trace.times,
        meter_watts=trace.watts,
        measured_energy_j=trace.energy(),
        true_energy_j=truth.energy(),
        breakdown=breakdown,
    )
