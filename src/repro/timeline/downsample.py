"""Deterministic downsampling for power timelines.

Two reducers, both pure functions of their inputs (no RNG, no clock):

* :func:`minmax_bins` — uniform binning of a piecewise-constant curve.
  Each bin carries three numbers: the exact min and max watts the curve
  takes anywhere in the bin (so no spike or trough is lost in rendering)
  and the *energy-preserving* mean (bin energy / bin width, computed from
  the curve's cumulative-energy function, so the binned means integrate
  back to the original energy up to float rounding).  O(segments + bins).
* :func:`lttb_indices` — Largest-Triangle-Three-Buckets selection over an
  irregular sample series (the meter-trace reducer).  Ties resolve to the
  earliest sample, so the selection is reproducible bit-for-bit.

Error bound, documented once and tested in ``tests/test_timeline.py``:
``w_mean`` preserves energy exactly (the per-bin energies telescope to the
total); ``[w_min, w_max]`` brackets the true curve over every bin.  What
binning *loses* is only the position of features inside a bin — never
joules, never extrema.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..exceptions import TimelineError

__all__ = ["minmax_bins", "lttb_indices"]


def minmax_bins(
    starts: np.ndarray,
    ends: np.ndarray,
    watts: np.ndarray,
    bins: int,
) -> Dict[str, np.ndarray]:
    """Bin a piecewise-constant curve onto a uniform grid.

    ``starts``/``ends``/``watts`` must describe tiling segments (the
    :class:`~repro.power.trace.PiecewisePower` invariant).  Returns a dict
    with ``edges`` (``bins + 1`` bin boundaries), ``w_min``, ``w_max``,
    and ``w_mean`` (each ``bins`` long).
    """
    starts = np.asarray(starts, dtype=float)
    ends = np.asarray(ends, dtype=float)
    watts = np.asarray(watts, dtype=float)
    if bins < 1:
        raise TimelineError(f"bins must be >= 1, got {bins}")
    if starts.size == 0:
        raise TimelineError("cannot bin an empty curve")
    t0 = float(starts[0])
    t1 = float(ends[-1])
    if t1 <= t0:
        raise TimelineError(f"curve spans no time: [{t0}, {t1}]")
    n = watts.size
    edges = np.linspace(t0, t1, bins + 1)

    # Energy-preserving means from the cumulative-energy function E(t):
    # the per-bin means are diff(E at edges) / bin width, so their
    # integral telescopes to E(t1) - E(t0) exactly.
    cum = np.concatenate([[0.0], np.cumsum((ends - starts) * watts)])
    idx = np.minimum(np.searchsorted(ends, edges, side="left"), n - 1)
    energy_at = cum[idx] + (edges - starts[idx]) * watts[idx]
    w_mean = np.diff(energy_at) / np.diff(edges)

    # Exact min/max: every segment overlapping a bin either *starts* in it
    # (assigned by its start) or covers the bin's left edge (assigned by
    # the edge sample), so the union of the two assignments sees every
    # overlapping segment.
    seg_bin = np.clip(
        ((starts - t0) / (t1 - t0) * bins).astype(np.intp), 0, bins - 1
    )
    w_min = np.full(bins, np.inf)
    w_max = np.full(bins, -np.inf)
    np.minimum.at(w_min, seg_bin, watts)
    np.maximum.at(w_max, seg_bin, watts)
    edge_idx = np.minimum(
        np.searchsorted(ends, edges[:-1], side="right"), n - 1
    )
    np.minimum(w_min, watts[edge_idx], out=w_min)
    np.maximum(w_max, watts[edge_idx], out=w_max)
    return {"edges": edges, "w_min": w_min, "w_max": w_max, "w_mean": w_mean}


def lttb_indices(times: np.ndarray, values: np.ndarray, n_out: int) -> np.ndarray:
    """Largest-Triangle-Three-Buckets sample selection.

    Returns the indices of the ``n_out`` samples to keep (first and last
    always survive).  For ``n_out >= len(times)`` returns every index.
    Deterministic: within a bucket, the first sample attaining the maximum
    triangle area wins (``np.argmax`` tie-breaking).
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    n = times.size
    if n_out >= n:
        return np.arange(n, dtype=np.intp)
    if n_out < 3:
        raise TimelineError(f"LTTB needs n_out >= 3, got {n_out}")
    every = (n - 2) / (n_out - 2)
    out = np.empty(n_out, dtype=np.intp)
    out[0] = 0
    out[-1] = n - 1
    anchor = 0
    for i in range(n_out - 2):
        lo = int(np.floor(i * every)) + 1
        hi = min(int(np.floor((i + 1) * every)) + 1, n - 1)
        if hi <= lo:
            hi = lo + 1
        # the next bucket's centroid (or the final point) closes the triangle
        nlo = hi
        nhi = min(int(np.floor((i + 2) * every)) + 1, n) if i < n_out - 3 else n
        if nhi > nlo:
            avg_t = float(times[nlo:nhi].mean())
            avg_v = float(values[nlo:nhi].mean())
        else:
            avg_t = float(times[-1])
            avg_v = float(values[-1])
        t_a = times[anchor]
        v_a = values[anchor]
        area = np.abs(
            (t_a - avg_t) * (values[lo:hi] - v_a)
            - (t_a - times[lo:hi]) * (avg_v - v_a)
        )
        anchor = lo + int(np.argmax(area))
        out[i + 1] = anchor
    return out
