"""Self-contained fleet dashboard: one HTML file, no server, no fetches.

:func:`render_dashboard` turns timeline artifacts (plus optional campaign
manifest, journal summary, and perfwatch trajectories) into a single HTML
document.  Everything is inline — a ``<style>`` block and hand-rolled SVG
sparklines — so the file opens from disk anywhere, attaches to CI runs,
and never phones home (validated in CI: the output contains no
``http://``/``https://`` references).

Sparkline grammar: each run's total wall power renders as a min-max band
(light polygon) with the energy-preserving bin means as a line over it;
meter samples render as a plain polyline; perfwatch metric trajectories
render one point per recorded run.
"""

from __future__ import annotations

import html
import time
from typing import Dict, List, Optional, Sequence

__all__ = ["render_dashboard"]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
       color: #1a202c; background: #fafafa; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
h3 { font-size: 0.95rem; margin: 0.8rem 0 0.2rem; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td { text-align: left; padding: 0.3rem 0.6rem;
         border-bottom: 1px solid #e2e8f0; }
th { background: #edf2f7; } tr:hover td { background: #f0f7ff; }
.num { text-align: right; font-variant-numeric: tabular-nums; }
.ok { color: #276749; } .bad { color: #c53030; font-weight: 600; }
.flag { display: inline-block; background: #fff5f5; color: #c53030;
        border: 1px solid #feb2b2; border-radius: 3px;
        padding: 0 0.3rem; margin-right: 0.2rem; font-size: 0.75rem; }
.meta { color: #718096; font-size: 0.8rem; }
.card { background: #fff; border: 1px solid #e2e8f0; border-radius: 6px;
        padding: 0.8rem 1rem; margin: 0.6rem 0; }
.spark { vertical-align: middle; }
pre { background: #1a202c; color: #e2e8f0; padding: 0.8rem;
      border-radius: 6px; overflow-x: auto; font-size: 0.78rem; }
.grid { display: flex; flex-wrap: wrap; gap: 0.6rem; }
"""


def _points(values: Sequence[float], width: int, height: int,
            lo: float, hi: float) -> str:
    """SVG polyline points for evenly spaced values scaled into the box."""
    n = len(values)
    if n == 1:
        values = list(values) * 2
        n = 2
    span = hi - lo if hi > lo else 1.0
    step = width / (n - 1)
    return " ".join(
        f"{i * step:.1f},{height - (v - lo) / span * height:.1f}"
        for i, v in enumerate(values)
    )


def _band_sparkline(total: Dict, width: int = 280, height: int = 48) -> str:
    """Min-max band + mean line for one binned total curve."""
    w_min: List[float] = total["w_min"]
    w_max: List[float] = total["w_max"]
    w_mean: List[float] = total["w_mean"]
    lo = 0.0
    hi = max(w_max) if w_max else 1.0
    upper = _points(w_max, width, height, lo, hi)
    lower_pts = _points(w_min, width, height, lo, hi).split(" ")
    band = upper + " " + " ".join(reversed(lower_pts))
    mean = _points(w_mean, width, height, lo, hi)
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
        f'<polygon points="{band}" fill="#bee3f8" stroke="none"/>'
        f'<polyline points="{mean}" fill="none" stroke="#2b6cb0" '
        f'stroke-width="1.2"/></svg>'
    )


def _line_sparkline(
    values: Sequence[float],
    width: int = 160,
    height: int = 32,
    color: str = "#805ad5",
) -> str:
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    pts = _points(list(values), width, height - 4, lo, hi)
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline points="{pts}" fill="none" stroke="{color}" '
        f'stroke-width="1.2" transform="translate(0,2)"/></svg>'
    )


def _fmt_energy(joules: float) -> str:
    if joules >= 1e6:
        return f"{joules / 1e6:.2f} MJ"
    if joules >= 1e3:
        return f"{joules / 1e3:.1f} kJ"
    return f"{joules:.0f} J"


def _ranking_table(rows: List[Dict]) -> str:
    body = []
    for row in rows:
        flags = "".join(
            f'<span class="flag">{html.escape(str(f))}</span>' for f in row["flags"]
        ) or '<span class="meta">none</span>'
        audit = (
            '<span class="ok">pass</span>'
            if row["audit_ok"]
            else '<span class="bad">FAIL</span>'
        )
        body.append(
            "<tr>"
            f'<td class="num">{row["rank"]}</td>'
            f"<td>{html.escape(str(row['job_id']))}</td>"
            f"<td>{html.escape(str(row['cluster']))}</td>"
            f'<td class="num">{row["num_ranks"]}</td>'
            f'<td class="num">{row["runs"]}</td>'
            f'<td class="num">{_fmt_energy(row["energy_j"])}</td>'
            f'<td class="num">{row["mean_power_w"]:.0f} W</td>'
            f'<td class="num">{row["makespan_s"]:.1f} s</td>'
            f"<td>{audit}</td>"
            f"<td>{flags}</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr>"
        '<th class="num">#</th><th>job</th><th>cluster</th>'
        '<th class="num">ranks</th><th class="num">runs</th>'
        '<th class="num">energy</th><th class="num">mean power</th>'
        '<th class="num">makespan</th><th>audit</th><th>anomalies</th>'
        "</tr></thead><tbody>" + "".join(body) + "</tbody></table>"
    )


def _run_card(run: Dict) -> str:
    label = html.escape(str(run["label"]))
    audit = run.get("audit", {})
    audit_badge = (
        f'<span class="ok">audit pass (worst {audit.get("worst", 0.0):.1e})</span>'
        if audit.get("ok")
        else f'<span class="bad">audit FAIL (worst {audit.get("worst", 0.0):.1e})</span>'
    )
    flags = [a for a in run.get("anomalies", []) if a.get("flagged")]
    flag_html = "".join(
        f'<span class="flag" title="{html.escape(str(a["detail"]))}">'
        f'{html.escape(str(a["lens"]))}</span>'
        for a in flags
    )
    breakdown = run.get("breakdown", {})
    total_j = sum(breakdown.values()) or 1.0
    parts = ", ".join(
        f"{html.escape(name)} {100 * joules / total_j:.0f}%"
        for name, joules in sorted(
            breakdown.items(), key=lambda kv: -kv[1]
        )[:4]
    )
    meter = run.get("meter", {})
    meter_svg = _line_sparkline(meter.get("watts", []), color="#dd6b20")
    return (
        '<div class="card">'
        f"<h3>{label} <span class=\"meta\">{run['num_ranks']} ranks, "
        f"{run['segments']} segments, {run['engine']}/{run['integration']}"
        f"</span></h3>"
        f"{_band_sparkline(run['total'])} {meter_svg}"
        f'<div class="meta">{_fmt_energy(run["energy_j"])} over '
        f"{run['makespan_s']:.1f} s &middot; mean "
        f"{run['mean_power_w']:.0f} W &middot; peak {run['max_power_w']:.0f} W"
        f" &middot; {audit_badge} {flag_html}</div>"
        f'<div class="meta">attribution: {parts}</div>'
        "</div>"
    )


def render_dashboard(
    artifacts: List[Dict],
    *,
    title: str = "TGI fleet dashboard",
    manifest: Optional[Dict] = None,
    journal_text: Optional[str] = None,
    perfwatch: Optional[List[Dict]] = None,
    max_system_cards: int = 60,
) -> str:
    """Render the artifacts (plus optional context) into one HTML page."""
    from .aggregate import FleetAggregator

    fleet = FleetAggregator()
    for artifact in artifacts:
        fleet.add_artifact(artifact)
    rows = fleet.rows()

    sections: List[str] = []
    sections.append(f"<h1>{html.escape(title)}</h1>")
    stamp = time.strftime("%Y-%m-%d %H:%M:%S UTC", time.gmtime())
    meta_bits = [
        f"{len(artifacts)} systems",
        f"{fleet.runs_total} runs",
        f"generated {stamp}",
    ]
    if manifest:
        meta_bits.append(
            f"campaign {html.escape(str(manifest.get('label', '?')))} "
            f"(fingerprint {html.escape(str(manifest.get('fingerprint', '?'))[:12])})"
        )
    sections.append(f'<div class="meta">{" &middot; ".join(meta_bits)}</div>')

    sections.append("<h2>Fleet ranking</h2>")
    sections.append(_ranking_table(rows))

    sections.append("<h2>Per-system power timelines</h2>")
    shown = 0
    for artifact in artifacts:
        if shown >= max_system_cards:
            sections.append(
                f'<div class="meta">… {len(artifacts) - shown} more systems '
                "omitted (raise max_system_cards to render all)</div>"
            )
            break
        for run in artifact["runs"]:
            sections.append(_run_card(run))
        shown += 1

    if journal_text:
        sections.append("<h2>Journal summary</h2>")
        sections.append(f"<pre>{html.escape(journal_text)}</pre>")

    if perfwatch:
        sections.append("<h2>Perfwatch trajectories</h2>")
        cards = []
        for trajectory in perfwatch:
            scenario = html.escape(str(trajectory.get("scenario", "?")))
            records = trajectory.get("records", [])
            metric_series: Dict[str, List[float]] = {}
            for record in records:
                for name, mv in dict(record.get("metrics", {})).items():
                    metric_series.setdefault(name, []).append(float(mv["value"]))
                metric_series.setdefault("wall_s", []).append(
                    min(record.get("wall_s", [0.0]))
                )
            for name, series in sorted(metric_series.items()):
                cards.append(
                    '<div class="card">'
                    f"<h3>{scenario} <span class=\"meta\">{html.escape(name)}"
                    f"</span></h3>{_line_sparkline(series)}"
                    f'<div class="meta">{len(series)} runs, last '
                    f"{series[-1]:.4g}</div></div>"
                )
        sections.append(f'<div class="grid">{"".join(cards)}</div>')

    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_CSS}</style></head><body>"
        + "".join(sections)
        + "</body></html>\n"
    )
