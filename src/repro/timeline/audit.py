"""Energy-conservation audit: the timeline must re-integrate to the record.

A captured timeline is only trustworthy if its integrals reproduce the
numbers the executor reported — the same joules TGI is computed from.
:func:`audit_run_timeline` checks four closures, each as a *relative*
error against the run's true energy, plus the downsampling bound:

1. **total vs truth** — the total timeline's integral vs the
   ``RunRecord``'s ``true_energy_j``;
2. **component closure** — the component timelines (including
   ``psu_loss``) must sum to the total;
3. **node closure** — per-node curves plus the idle-node floor must sum
   to the total;
4. **breakdown match** — each component timeline's joules vs the
   executor's ``energy_breakdown`` attribution;
5. **downsample closure** — the min-max binning's energy-preserving means
   must re-integrate to the total.

All five hold within ``1e-9`` relative for every engine × integration
mode (property-tested in ``tests/test_timeline.py``); in practice the
errors are float-association noise around ``1e-13``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from .downsample import minmax_bins
from .model import RunTimeline

__all__ = ["AuditReport", "audit_run_timeline", "DEFAULT_TOLERANCE"]

DEFAULT_TOLERANCE = 1e-9


@dataclass
class AuditReport:
    """Outcome of one conservation audit (all errors relative)."""

    label: str
    tolerance: float
    total_vs_truth: float
    component_closure: float
    node_closure: float
    breakdown_match: float
    downsample_closure: float
    ok: bool = field(init=False)

    def __post_init__(self) -> None:
        self.ok = self.worst <= self.tolerance

    @property
    def worst(self) -> float:
        return max(
            self.total_vs_truth,
            self.component_closure,
            self.node_closure,
            self.breakdown_match,
            self.downsample_closure,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "tolerance": self.tolerance,
            "total_vs_truth": self.total_vs_truth,
            "component_closure": self.component_closure,
            "node_closure": self.node_closure,
            "breakdown_match": self.breakdown_match,
            "downsample_closure": self.downsample_closure,
            "worst": self.worst,
            "ok": self.ok,
        }


def _rel(delta: float, reference: float) -> float:
    if reference == 0.0:
        return abs(delta)
    return abs(delta) / abs(reference)


def audit_run_timeline(
    timeline: RunTimeline,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    bins: int = 64,
) -> AuditReport:
    """Run every conservation check against ``timeline``."""
    reference = timeline.true_energy_j
    total = timeline.energy_j

    # 1. total timeline vs the executor's reported truth
    total_vs_truth = _rel(total - reference, reference)

    # 2. component timelines (incl. psu_loss) sum to the total
    component_energies = timeline.component_energies()
    component_closure = _rel(sum(component_energies.values()) - total, reference)

    # 3. active-node curves plus the idle floor sum to the total
    node_total = float(timeline.node_energies().sum())
    idle_floor = (
        timeline.idle_nodes * timeline.idle_wall_w * timeline.makespan_s
    )
    node_closure = _rel(node_total + idle_floor - total, reference)

    # 4. each component's joules vs the executor's attribution
    errors: List[float] = []
    for name, joules in timeline.breakdown.items():
        errors.append(_rel(component_energies.get(name, 0.0) - joules, reference))
    breakdown_match = max(errors) if errors else 0.0

    # 5. binned means re-integrate to the total (the documented bound:
    # energy-preserving by construction, float rounding only)
    binned = minmax_bins(
        timeline.total_starts, timeline.total_ends, timeline.total_watts, bins
    )
    binned_energy = float(np.dot(binned["w_mean"], np.diff(binned["edges"])))
    downsample_closure = _rel(binned_energy - total, reference)

    return AuditReport(
        label=timeline.label,
        tolerance=tolerance,
        total_vs_truth=total_vs_truth,
        component_closure=component_closure,
        node_closure=node_closure,
        breakdown_match=breakdown_match,
        downsample_closure=downsample_closure,
    )
