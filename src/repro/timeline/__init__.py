"""Watt-level power timelines: capture, audit, lenses, and the dashboard.

The observability layer over the sweep-line power integrator.  With a
sink armed (see :func:`collecting`), every
:meth:`~repro.sim.executor.ClusterExecutor.execute` call captures the
run's power timelines as struct-of-arrays — the cluster total, per-node
curves, and per-component DC attribution — at O(1) reference-stash cost;
disarmed, the executor pays a single ``None`` check.

Layers, lowest first:

* :mod:`~repro.timeline.capture` — the ambient arm/disarm sink and the
  raw columnar :class:`TimelineCapture` the integrators fill;
* :mod:`~repro.timeline.model` — :class:`RunTimeline`, the lazy
  struct-of-arrays view (component grids, node curves, energies);
* :mod:`~repro.timeline.downsample` — deterministic min-max binning and
  LTTB reduction;
* :mod:`~repro.timeline.audit` — the energy-conservation audit pinning
  timeline integrals to the executor's reported joules within 1e-9;
* :mod:`~repro.timeline.lenses` — anomaly screens (idle dwell, PSU
  saturation, spikes, meter drift);
* :mod:`~repro.timeline.aggregate` — per-job artifacts and streaming
  fleet aggregation;
* :mod:`~repro.timeline.dashboard` — the self-contained single-file HTML
  fleet report behind ``tgi dashboard``.

Quick tour::

    from repro import timeline as tline
    with tline.collecting() as timelines:
        executor.execute(placement, programs, label="probe")
    tl = timelines[0]
    report = tline.audit_run_timeline(tl)
    assert report.ok
    flags = [a for a in tline.scan_run(tl) if a["flagged"]]
"""

from .aggregate import (
    TIMELINE_SCHEMA_VERSION,
    FleetAggregator,
    artifact_path,
    discover_artifacts,
    load_artifacts,
    read_job_artifact,
    run_summary,
    write_job_artifact,
)
from .audit import DEFAULT_TOLERANCE, AuditReport, audit_run_timeline
from .capture import (
    MemorySink,
    TimelineCapture,
    ambient_sink,
    attach_sink,
    capturing,
    collecting,
    detach_sink,
    record,
)
from .dashboard import render_dashboard
from .downsample import lttb_indices, minmax_bins
from .lenses import DEFAULT_THRESHOLDS, scan_run
from .model import RunTimeline, build_run_timeline

__all__ = [
    "TIMELINE_SCHEMA_VERSION",
    "DEFAULT_TOLERANCE",
    "DEFAULT_THRESHOLDS",
    "AuditReport",
    "FleetAggregator",
    "MemorySink",
    "RunTimeline",
    "TimelineCapture",
    "ambient_sink",
    "artifact_path",
    "attach_sink",
    "audit_run_timeline",
    "build_run_timeline",
    "capturing",
    "collecting",
    "detach_sink",
    "discover_artifacts",
    "lttb_indices",
    "load_artifacts",
    "minmax_bins",
    "read_job_artifact",
    "record",
    "render_dashboard",
    "run_summary",
    "scan_run",
    "write_job_artifact",
]
