"""Timeline artifacts and streaming fleet aggregation.

One campaign job → one ``<job_id>.timeline.json`` artifact holding a
downsampled summary of every run the job executed (min-max binned total,
per-component bin means, an LTTB-reduced meter trace, the conservation
audit, and the anomaly scan).  Artifacts are written atomically and are
deliberately small — ~100 bins per curve — so a 100k-rank run renders in
a few KB and a 50-config campaign's whole timeline directory stays under
a megabyte.

:class:`FleetAggregator` streams over artifacts (one at a time, never the
whole fleet in memory as timelines) and produces the ranking rows the
dashboard renders.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from ..exceptions import TimelineError
from .audit import audit_run_timeline
from .downsample import lttb_indices, minmax_bins
from .lenses import scan_run
from .model import RunTimeline

__all__ = [
    "TIMELINE_SCHEMA_VERSION",
    "run_summary",
    "write_job_artifact",
    "read_job_artifact",
    "discover_artifacts",
    "load_artifacts",
    "FleetAggregator",
]

#: Bumped when the artifact layout changes incompatibly.
TIMELINE_SCHEMA_VERSION = 1

_SAFE_ID = re.compile(r"[^A-Za-z0-9._-]+")


def _round_list(values: np.ndarray, digits: int = 3) -> List[float]:
    return [round(float(v), digits) for v in values]


def run_summary(
    timeline: RunTimeline,
    *,
    bins: int = 96,
    meter_points: int = 64,
) -> Dict[str, object]:
    """A JSON-friendly, render-ready summary of one run timeline.

    Curve watts are rounded to milliwatts (rendering precision); energies
    and audit errors keep full precision.
    """
    audit = audit_run_timeline(timeline)
    binned = minmax_bins(
        timeline.total_starts, timeline.total_ends, timeline.total_watts, bins
    )
    edges, levels, _ = timeline.component_grid()
    component_bins = {
        name: _round_list(
            minmax_bins(edges[:-1], edges[1:], level, bins)["w_mean"]
        )
        for name, level in sorted(levels.items())
    }
    meter_idx = (
        lttb_indices(timeline.meter_times, timeline.meter_watts, meter_points)
        if timeline.meter_times.size > meter_points
        else np.arange(timeline.meter_times.size)
    )
    return {
        "label": timeline.label,
        "cluster": timeline.cluster_name,
        "num_ranks": timeline.num_ranks,
        "num_nodes": timeline.num_nodes,
        "nodes_active": timeline.nodes_active,
        "idle_nodes": timeline.idle_nodes,
        "makespan_s": timeline.makespan_s,
        "engine": timeline.engine,
        "integration": timeline.integration,
        "metering": timeline.metering,
        "segments": timeline.segments,
        "energy_j": timeline.energy_j,
        "true_energy_j": timeline.true_energy_j,
        "measured_energy_j": timeline.measured_energy_j,
        "mean_power_w": timeline.mean_power_w,
        "max_power_w": timeline.max_power_w,
        "breakdown": {k: float(v) for k, v in sorted(timeline.breakdown.items())},
        "audit": audit.as_dict(),
        "anomalies": scan_run(timeline),
        "total": {
            "t0": float(binned["edges"][0]),
            "t1": float(binned["edges"][-1]),
            "bins": bins,
            "w_min": _round_list(binned["w_min"]),
            "w_max": _round_list(binned["w_max"]),
            "w_mean": _round_list(binned["w_mean"]),
        },
        "components": component_bins,
        "meter": {
            "times": _round_list(timeline.meter_times[meter_idx]),
            "watts": _round_list(timeline.meter_watts[meter_idx]),
        },
    }


def artifact_path(directory: Union[str, Path], job_id: str) -> Path:
    """Where a job's timeline artifact lives (job id made filesystem-safe)."""
    return Path(directory) / f"{_SAFE_ID.sub('_', job_id)}.timeline.json"


def write_job_artifact(
    directory: Union[str, Path],
    *,
    job_id: str,
    timelines: Sequence[RunTimeline],
    bins: int = 96,
    meter_points: int = 64,
) -> Path:
    """Summarize one job's captured timelines into its artifact file."""
    if not timelines:
        raise TimelineError(f"job {job_id!r} captured no timelines")
    payload = {
        "timeline_version": TIMELINE_SCHEMA_VERSION,
        "job_id": job_id,
        "runs": [
            run_summary(tl, bins=bins, meter_points=meter_points)
            for tl in timelines
        ],
    }
    # Imported here: repro.serialization pulls in the benchmark layer,
    # which imports the executor, which imports this package — a cycle at
    # module-import time but not at write time.
    from ..serialization import atomic_write_text

    path = artifact_path(directory, job_id)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(path, json.dumps(payload, sort_keys=True) + "\n")
    return path


def read_job_artifact(path: Union[str, Path]) -> Dict[str, object]:
    """Load and structurally validate one artifact."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise TimelineError(f"unreadable timeline artifact {path}: {exc}") from exc
    version = data.get("timeline_version")
    if version != TIMELINE_SCHEMA_VERSION:
        raise TimelineError(
            f"{path}: timeline artifact version {version!r} not supported "
            f"(this build reads version {TIMELINE_SCHEMA_VERSION})"
        )
    if "job_id" not in data or not isinstance(data.get("runs"), list):
        raise TimelineError(f"{path}: missing job_id/runs")
    return data


def discover_artifacts(directory: Union[str, Path]) -> List[Path]:
    """Every ``*.timeline.json`` under ``directory``, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        raise TimelineError(f"timeline directory not found: {directory}")
    return sorted(directory.glob("*.timeline.json"))


def load_artifacts(directory: Union[str, Path]) -> List[Dict[str, object]]:
    """Read every artifact in ``directory`` (raises when there are none)."""
    paths = discover_artifacts(directory)
    if not paths:
        raise TimelineError(f"no *.timeline.json artifacts under {directory}")
    return [read_job_artifact(p) for p in paths]


class FleetAggregator:
    """Streaming reduction of job artifacts into fleet ranking rows."""

    def __init__(self) -> None:
        self._rows: List[Dict[str, object]] = []
        self.runs_total = 0
        self.audits_failed = 0

    def add_artifact(self, artifact: Dict[str, object]) -> None:
        """Fold one job artifact in (constant memory per job)."""
        job_id = str(artifact["job_id"])
        runs: List[Dict] = artifact["runs"]  # type: ignore[assignment]
        if not runs:
            return
        self.runs_total += len(runs)
        energy = sum(float(r["energy_j"]) for r in runs)
        makespan = sum(float(r["makespan_s"]) for r in runs)
        flagged = sorted(
            {
                a["lens"]
                for r in runs
                for a in r.get("anomalies", [])
                if a.get("flagged")
            }
        )
        audit_ok = all(r.get("audit", {}).get("ok", False) for r in runs)
        if not audit_ok:
            self.audits_failed += 1
        self._rows.append(
            {
                "job_id": job_id,
                "cluster": str(runs[0]["cluster"]),
                "num_ranks": max(int(r["num_ranks"]) for r in runs),
                "num_nodes": int(runs[0]["num_nodes"]),
                "runs": len(runs),
                "energy_j": energy,
                "makespan_s": makespan,
                "mean_power_w": energy / makespan if makespan else 0.0,
                "max_power_w": max(float(r["max_power_w"]) for r in runs),
                "audit_ok": audit_ok,
                "flags": flagged,
            }
        )

    def add_directory(self, directory: Union[str, Path]) -> None:
        for path in discover_artifacts(directory):
            self.add_artifact(read_job_artifact(path))

    def rows(self, *, rank_by: str = "energy_j") -> List[Dict[str, object]]:
        """Ranking rows, greenest (lowest ``rank_by``) first."""
        ordered = sorted(
            self._rows, key=lambda r: (float(r[rank_by]), str(r["job_id"]))
        )
        for rank, row in enumerate(ordered, start=1):
            row["rank"] = rank
        return ordered
