"""The Green Index (paper Section II, Eq. 4).

:class:`TGICalculator` implements the four-step algorithm: compute each
benchmark's efficiency, normalize by the reference system, weight, and sum.
:meth:`TGICalculator.compute_series` applies it at every point of a scaling
sweep, producing the curves of the paper's Figures 5 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..benchmarks.runner import SweepResult
from ..benchmarks.suite import SuiteResult
from ..exceptions import MetricError
from .efficiency import EfficiencyMetric, PerformancePerWatt
from .ree import ReferenceSet
from .weights import ArithmeticMeanWeights, WeightingScheme, validate_weights

__all__ = ["tgi_from_components", "TGIResult", "TGISeries", "TGICalculator"]


def tgi_from_components(ree: Dict[str, float], weights: Dict[str, float]) -> float:
    """Eq. 4: ``TGI = sum_i W_i * REE_i``.

    ``ree`` and ``weights`` must cover exactly the same benchmarks and the
    weights must satisfy the sum-to-one constraint.
    """
    if set(ree) != set(weights):
        raise MetricError(
            f"REE covers {sorted(ree)} but weights cover {sorted(weights)}"
        )
    validate_weights(weights)
    for name, value in ree.items():
        if value <= 0:
            raise MetricError(f"REE for {name!r} must be > 0, got {value!r}")
    return sum(weights[name] * ree[name] for name in ree)


@dataclass(frozen=True)
class TGIResult:
    """TGI at one scale point, with its ingredients.

    ``coverage`` is the fraction of the reference's benchmarks the suite
    actually ran (1.0 for a full run); ``missing`` names the ones it lost.
    A degraded TGI sums renormalized weights over the survivors only — it
    is comparable to full TGIs in spirit but must never be presented as
    one, which is why coverage travels with the value through ranking and
    report rendering.
    """

    cores: int
    value: float
    ree: Dict[str, float]
    weights: Dict[str, float]
    efficiencies: Dict[str, float]
    weighting_name: str
    reference_name: str
    coverage: float = 1.0
    missing: Tuple[str, ...] = ()

    @property
    def complete(self) -> bool:
        """Whether every reference benchmark contributed (no degradation)."""
        return not self.missing

    @property
    def least_efficient_benchmark(self) -> str:
        """The benchmark with the smallest REE (the paper expects TGI to
        reflect this subsystem's behaviour)."""
        return min(self.ree, key=self.ree.get)

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v:.3f}" for k, v in sorted(self.ree.items()))
        note = "" if self.complete else f" [partial: {self.coverage:.0%} coverage]"
        return (
            f"TGI[{self.weighting_name}]@{self.cores} cores = "
            f"{self.value:.4f} (REE: {parts}){note}"
        )


@dataclass(frozen=True)
class TGISeries:
    """TGI over a scaling sweep (one of the curves in Figures 5-6)."""

    cores: Tuple[int, ...]
    results: Tuple[TGIResult, ...]

    @property
    def values(self) -> np.ndarray:
        """TGI at each scale point."""
        return np.array([r.value for r in self.results])

    def ree_series(self, benchmark: str) -> np.ndarray:
        """One benchmark's REE at each scale point."""
        return np.array([r.ree[benchmark] for r in self.results])

    def efficiency_series(self, benchmark: str) -> np.ndarray:
        """One benchmark's EE at each scale point."""
        return np.array([r.efficiencies[benchmark] for r in self.results])

    def weight_series(self, benchmark: str) -> np.ndarray:
        """One benchmark's weight at each scale point."""
        return np.array([r.weights[benchmark] for r in self.results])

    def __len__(self) -> int:
        return len(self.results)


class TGICalculator:
    """Computes TGI for suite results against a fixed reference.

    Parameters
    ----------
    reference:
        Reference efficiencies (Eq. 3's denominators).
    weighting:
        Weighting scheme; arithmetic mean by default (Eq. 6).
    metric:
        Efficiency metric; performance-per-watt by default (Eq. 2).  The
        same metric must have produced the reference set.
    allow_partial:
        Whether a suite covering only *some* of the reference's benchmarks
        is acceptable.  Off by default: historically a partial suite
        slipped through silently (``check_covers`` only tests suite ⊆
        reference) and produced a TGI indistinguishable from a full one.
        Now a partial suite raises unless explicitly allowed, in which
        case the survivors' weights are renormalized to sum to one
        (paper Section II) and the result carries its ``coverage``.
    """

    def __init__(
        self,
        reference: ReferenceSet,
        *,
        weighting: Optional[WeightingScheme] = None,
        metric: Optional[EfficiencyMetric] = None,
        allow_partial: bool = False,
    ):
        self.reference = reference
        self.weighting = weighting or ArithmeticMeanWeights()
        self.metric = metric or PerformancePerWatt()
        self.allow_partial = allow_partial

    def compute(self, suite_result: SuiteResult) -> TGIResult:
        """TGI for one suite run (one point of Figure 5/6)."""
        self.reference.check_covers(suite_result.names)
        missing = tuple(
            sorted(set(self.reference.benchmarks) - set(suite_result.names))
        )
        if missing and not self.allow_partial:
            raise MetricError(
                f"suite is missing benchmarks {list(missing)} of reference "
                f"{self.reference.system_name!r}; pass allow_partial=True to "
                "compute a coverage-annotated degraded TGI"
            )
        coverage = len(suite_result.names) / len(self.reference.benchmarks)
        efficiencies = {
            r.benchmark: self.metric.value(r) for r in suite_result.results
        }
        ree = {
            name: self.reference.relative(name, ee)
            for name, ee in efficiencies.items()
        }
        if missing:
            weights = self.weighting.partial_weights(suite_result)
        else:
            weights = self.weighting.weights(suite_result)
        value = tgi_from_components(ree, weights)
        return TGIResult(
            cores=suite_result.cores,
            value=value,
            ree=ree,
            weights=weights,
            efficiencies=efficiencies,
            weighting_name=self.weighting.name,
            reference_name=self.reference.system_name,
            coverage=coverage,
            missing=missing,
        )

    def compute_series(self, sweep: SweepResult) -> TGISeries:
        """TGI at every point of a scaling sweep."""
        results = tuple(self.compute(suite) for suite in sweep.suites)
        return TGISeries(cores=tuple(sweep.cores), results=results)
