"""The Green Index (paper Section II, Eq. 4).

:class:`TGICalculator` implements the four-step algorithm: compute each
benchmark's efficiency, normalize by the reference system, weight, and sum.
:meth:`TGICalculator.compute_series` applies it at every point of a scaling
sweep, producing the curves of the paper's Figures 5 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..benchmarks.runner import SweepResult
from ..benchmarks.suite import SuiteResult
from ..exceptions import MetricError
from .efficiency import EfficiencyMetric, PerformancePerWatt
from .ree import ReferenceSet
from .weights import ArithmeticMeanWeights, WeightingScheme, validate_weights

__all__ = ["tgi_from_components", "TGIResult", "TGISeries", "TGICalculator"]


def tgi_from_components(ree: Dict[str, float], weights: Dict[str, float]) -> float:
    """Eq. 4: ``TGI = sum_i W_i * REE_i``.

    ``ree`` and ``weights`` must cover exactly the same benchmarks and the
    weights must satisfy the sum-to-one constraint.
    """
    if set(ree) != set(weights):
        raise MetricError(
            f"REE covers {sorted(ree)} but weights cover {sorted(weights)}"
        )
    validate_weights(weights)
    for name, value in ree.items():
        if value <= 0:
            raise MetricError(f"REE for {name!r} must be > 0, got {value!r}")
    return sum(weights[name] * ree[name] for name in ree)


@dataclass(frozen=True)
class TGIResult:
    """TGI at one scale point, with its ingredients."""

    cores: int
    value: float
    ree: Dict[str, float]
    weights: Dict[str, float]
    efficiencies: Dict[str, float]
    weighting_name: str
    reference_name: str

    @property
    def least_efficient_benchmark(self) -> str:
        """The benchmark with the smallest REE (the paper expects TGI to
        reflect this subsystem's behaviour)."""
        return min(self.ree, key=self.ree.get)

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v:.3f}" for k, v in sorted(self.ree.items()))
        return f"TGI[{self.weighting_name}]@{self.cores} cores = {self.value:.4f} (REE: {parts})"


@dataclass(frozen=True)
class TGISeries:
    """TGI over a scaling sweep (one of the curves in Figures 5-6)."""

    cores: Tuple[int, ...]
    results: Tuple[TGIResult, ...]

    @property
    def values(self) -> np.ndarray:
        """TGI at each scale point."""
        return np.array([r.value for r in self.results])

    def ree_series(self, benchmark: str) -> np.ndarray:
        """One benchmark's REE at each scale point."""
        return np.array([r.ree[benchmark] for r in self.results])

    def efficiency_series(self, benchmark: str) -> np.ndarray:
        """One benchmark's EE at each scale point."""
        return np.array([r.efficiencies[benchmark] for r in self.results])

    def weight_series(self, benchmark: str) -> np.ndarray:
        """One benchmark's weight at each scale point."""
        return np.array([r.weights[benchmark] for r in self.results])

    def __len__(self) -> int:
        return len(self.results)


class TGICalculator:
    """Computes TGI for suite results against a fixed reference.

    Parameters
    ----------
    reference:
        Reference efficiencies (Eq. 3's denominators).
    weighting:
        Weighting scheme; arithmetic mean by default (Eq. 6).
    metric:
        Efficiency metric; performance-per-watt by default (Eq. 2).  The
        same metric must have produced the reference set.
    """

    def __init__(
        self,
        reference: ReferenceSet,
        *,
        weighting: Optional[WeightingScheme] = None,
        metric: Optional[EfficiencyMetric] = None,
    ):
        self.reference = reference
        self.weighting = weighting or ArithmeticMeanWeights()
        self.metric = metric or PerformancePerWatt()

    def compute(self, suite_result: SuiteResult) -> TGIResult:
        """TGI for one suite run (one point of Figure 5/6)."""
        self.reference.check_covers(suite_result.names)
        efficiencies = {
            r.benchmark: self.metric.value(r) for r in suite_result.results
        }
        ree = {
            name: self.reference.relative(name, ee)
            for name, ee in efficiencies.items()
        }
        weights = self.weighting.weights(suite_result)
        value = tgi_from_components(ree, weights)
        return TGIResult(
            cores=suite_result.cores,
            value=value,
            ree=ree,
            weights=weights,
            efficiencies=efficiencies,
            weighting_name=self.weighting.name,
            reference_name=self.reference.system_name,
        )

    def compute_series(self, sweep: SweepResult) -> TGISeries:
        """TGI at every point of a scaling sweep."""
        results = tuple(self.compute(suite) for suite in sweep.suites)
        return TGISeries(cores=tuple(sweep.cores), results=results)
