"""Energy-delay-product efficiency (Section II's metric-agnosticism claim).

The paper argues TGI "can be used with any other energy-efficient metric,
such as the energy-delay product".  :func:`edp_efficiency` provides the
scalar helper; :class:`~repro.core.efficiency.InverseEDP` is the pluggable
metric object used by :class:`~repro.core.tgi.TGICalculator`.
"""

from __future__ import annotations

from ..exceptions import MetricError
from ..power.energy import energy_delay_product
from ..validation import check_positive

__all__ = ["edp_efficiency"]


def edp_efficiency(energy_joules: float, delay_seconds: float, *, weight: int = 1) -> float:
    """``1 / (E * t^w)`` — higher is better, suitable as a TGI base metric."""
    check_positive(energy_joules, "energy_joules", exc=MetricError)
    check_positive(delay_seconds, "delay_seconds", exc=MetricError)
    return 1.0 / energy_delay_product(energy_joules, delay_seconds, weight=weight)
