"""The Green Index (TGI) — the paper's contribution.

The pipeline follows Section II's four-step algorithm:

1. :mod:`~repro.core.efficiency` — per-benchmark energy efficiency
   ``EE_i = performance_i / power_i`` (Eq. 2), pluggable so TGI can run on
   other efficiency metrics such as inverse EDP (:mod:`~repro.core.edp`);
2. :mod:`~repro.core.ree` — relative energy efficiency against a reference
   system, ``REE_i = EE_i / EE_ref,i`` (Eq. 3);
3. :mod:`~repro.core.weights` — weighting schemes with ``sum W_i = 1``:
   arithmetic mean (Eq. 6) and time/energy/power-weighted means
   (Eqs. 10-12);
4. :mod:`~repro.core.tgi` — ``TGI = sum W_i * REE_i`` (Eq. 4).

:mod:`~repro.core.ranking` provides SPEC-style ratings (Eq. 1) and
Green500-style system ranking; :mod:`~repro.core.properties` encodes the
"desired property" analysis of Section III (inverse proportionality to
energy, and the algebraic identities of Eqs. 13-15);
:mod:`~repro.core.report` renders results as text tables.
"""

from .efficiency import (
    EfficiencyMetric,
    PerformancePerWatt,
    InverseEDP,
    energy_efficiency,
)
from .ree import ReferenceSet, relative_efficiency
from .weights import (
    WeightingScheme,
    ArithmeticMeanWeights,
    TimeWeights,
    EnergyWeights,
    PowerWeights,
    CustomWeights,
    renormalize_weights,
    validate_weights,
)
from .tgi import TGICalculator, TGIResult, TGISeries, tgi_from_components
from .edp import edp_efficiency
from .alternatives import GeometricTGICalculator, geometric_tgi_from_components
from .workload_weights import (
    ApplicationProfile,
    WorkloadWeights,
    CFD_PROFILE,
    GENOMICS_PROFILE,
    CHECKPOINT_HEAVY_PROFILE,
    DENSE_LINALG_PROFILE,
)
from .ranking import RankedSystem, rank_systems, spec_rating
from .properties import (
    inverse_energy_property_holds,
    time_weighted_identity,
    energy_weighted_identity,
    power_weighted_identity,
)
from .report import format_suite_result, format_tgi_result, format_ranking

__all__ = [
    "EfficiencyMetric",
    "PerformancePerWatt",
    "InverseEDP",
    "energy_efficiency",
    "ReferenceSet",
    "relative_efficiency",
    "WeightingScheme",
    "ArithmeticMeanWeights",
    "TimeWeights",
    "EnergyWeights",
    "PowerWeights",
    "CustomWeights",
    "renormalize_weights",
    "validate_weights",
    "TGICalculator",
    "TGIResult",
    "TGISeries",
    "tgi_from_components",
    "edp_efficiency",
    "GeometricTGICalculator",
    "geometric_tgi_from_components",
    "ApplicationProfile",
    "WorkloadWeights",
    "CFD_PROFILE",
    "GENOMICS_PROFILE",
    "CHECKPOINT_HEAVY_PROFILE",
    "DENSE_LINALG_PROFILE",
    "RankedSystem",
    "rank_systems",
    "spec_rating",
    "inverse_energy_property_holds",
    "time_weighted_identity",
    "energy_weighted_identity",
    "power_weighted_identity",
    "format_suite_result",
    "format_tgi_result",
    "format_ranking",
]
