"""System ranking: SPEC-style ratings and Green500-style lists.

The paper motivates TGI with the SPEC rating (Eq. 1) — performance of a
reference over the system under test, normalized so systems can be compared
with one number — and with the Green500 list, which ranks machines by
FLOPS/W.  :func:`spec_rating` implements Eq. 1; :func:`rank_systems` ranks
any number of systems by their TGI against a common reference, the use case
TGI was designed for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..benchmarks.suite import SuiteResult
from ..exceptions import MetricError
from ..validation import check_positive
from .tgi import TGICalculator, TGIResult

__all__ = ["spec_rating", "RankedSystem", "rank_systems"]


def spec_rating(reference_time_s: float, system_time_s: float) -> float:
    """Eq. 1 with time as the performance unit.

    A rating of 25 means the system under test is 25x faster than the
    reference (smaller time, larger rating).
    """
    check_positive(reference_time_s, "reference_time_s", exc=MetricError)
    check_positive(system_time_s, "system_time_s", exc=MetricError)
    return reference_time_s / system_time_s


@dataclass(frozen=True)
class RankedSystem:
    """One row of a TGI ranking."""

    rank: int
    system_name: str
    tgi: TGIResult

    @property
    def value(self) -> float:
        """The system's TGI."""
        return self.tgi.value

    @property
    def coverage(self) -> float:
        """Fraction of the reference's benchmarks behind this TGI (1.0 = full)."""
        return self.tgi.coverage


def rank_systems(
    entries: Sequence[Tuple[str, SuiteResult]],
    calculator: TGICalculator,
) -> List[RankedSystem]:
    """Rank systems by TGI, descending (greener first).

    Parameters
    ----------
    entries:
        ``(system name, suite result)`` pairs, each measured with the same
        benchmark suite the calculator's reference covers.
    calculator:
        A :class:`~repro.core.tgi.TGICalculator` bound to the common
        reference system and weighting scheme.
    """
    if not entries:
        raise MetricError("nothing to rank")
    names = [name for name, _ in entries]
    if len(set(names)) != len(names):
        raise MetricError(f"duplicate system names: {names}")
    scored = [(name, calculator.compute(suite)) for name, suite in entries]
    scored.sort(key=lambda pair: pair[1].value, reverse=True)
    return [
        RankedSystem(rank=i + 1, system_name=name, tgi=result)
        for i, (name, result) in enumerate(scored)
    ]
