"""Alternative aggregators: the geometric-mean Green Index.

TGI (Eq. 4) is a weighted *arithmetic* mean of REE ratios.  The means
literature the paper cites (Smith 1988; John 2004) argues that ratios want
a *geometric* mean, because only the GM makes comparisons independent of
the normalization basis.  This module provides that variant and states the
theorem the tests verify:

**Reference invariance.**  For systems A, B and any references R, R'::

    GTGI_R(A) / GTGI_R(B) = prod_i (EE_A,i / EE_B,i)^{W_i}

The reference cancels, so the *ordering* (and even the ratio) of any two
systems under geometric TGI is the same under every reference — the
pathology probed by :mod:`repro.analysis.reference_sensitivity` cannot
occur.  The price: GTGI loses the arithmetic mean's "work per total joule"
reading (Eq. 8) and is no longer inversely proportional to any single
benchmark's energy, only to their weighted geometric blend.

The paper's arithmetic choice is kept as the default everywhere; this
module exists to make the trade-off executable.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from ..benchmarks.suite import SuiteResult
from ..exceptions import MetricError
from .efficiency import EfficiencyMetric, PerformancePerWatt
from .ree import ReferenceSet
from .weights import ArithmeticMeanWeights, WeightingScheme, validate_weights

__all__ = ["geometric_tgi_from_components", "GeometricTGICalculator"]


def geometric_tgi_from_components(
    ree: Mapping[str, float], weights: Mapping[str, float]
) -> float:
    """``prod_i REE_i^{W_i}`` — the weighted geometric mean of the REEs."""
    if set(ree) != set(weights):
        raise MetricError(
            f"REE covers {sorted(ree)} but weights cover {sorted(weights)}"
        )
    validate_weights(dict(weights))
    log_sum = 0.0
    for name, value in ree.items():
        if value <= 0:
            raise MetricError(f"REE for {name!r} must be > 0, got {value!r}")
        log_sum += weights[name] * math.log(value)
    return math.exp(log_sum)


class GeometricTGICalculator:
    """Drop-in geometric variant of :class:`~repro.core.tgi.TGICalculator`.

    Only :meth:`compute_value` is provided (the ingredients view is the
    same as the arithmetic calculator's); use it when reference-invariant
    *orderings* matter more than the energy-proportionality reading.
    """

    def __init__(
        self,
        reference: ReferenceSet,
        *,
        weighting: Optional[WeightingScheme] = None,
        metric: Optional[EfficiencyMetric] = None,
    ):
        self.reference = reference
        self.weighting = weighting or ArithmeticMeanWeights()
        self.metric = metric or PerformancePerWatt()

    def compute_value(self, suite_result: SuiteResult) -> float:
        """Geometric TGI of one suite run."""
        self.reference.check_covers(suite_result.names)
        ree: Dict[str, float] = {}
        for result in suite_result.results:
            ee = self.metric.value(result)
            ree[result.benchmark] = self.reference.relative(result.benchmark, ee)
        weights = self.weighting.weights(suite_result)
        return geometric_tgi_from_components(ree, weights)
