"""TGI weighting schemes (paper Section III, Eqs. 6 and 9-12).

Each scheme assigns one weight per benchmark, summing to one:

* :class:`ArithmeticMeanWeights` — ``W_i = 1/n`` (Eq. 6);
* :class:`TimeWeights` — ``W_i = t_i / sum(t)`` (Eq. 10);
* :class:`EnergyWeights` — ``W_i = e_i / sum(e)`` (Eq. 11);
* :class:`PowerWeights` — ``W_i = p_i / sum(p)`` (Eq. 12);
* :class:`CustomWeights` — user-specified, e.g. "weight memory highest
  because my application is memory-bound" (the flexibility argument of
  Section II).

Weights that depend on run properties (time/energy/power) are computed from
the suite result of the *system under test* at each scale point, matching
Eqs. 13-15 where ``t_i``, ``e_i``, ``p_i`` are the benchmark's own
measurements.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, Mapping

from ..benchmarks.suite import SuiteResult
from ..exceptions import WeightError

__all__ = [
    "validate_weights",
    "renormalize_weights",
    "WeightingScheme",
    "ArithmeticMeanWeights",
    "TimeWeights",
    "EnergyWeights",
    "PowerWeights",
    "CustomWeights",
]

#: Tolerance on the sum-to-one constraint.
_SUM_TOL = 1e-9


def validate_weights(weights: Mapping[str, float]) -> Dict[str, float]:
    """Check the Section II constraint: all weights >= 0, summing to 1."""
    if not weights:
        raise WeightError("weights must cover at least one benchmark")
    for name, w in weights.items():
        if not math.isfinite(w) or w < 0:
            raise WeightError(f"weight for {name!r} must be finite and >= 0, got {w!r}")
    total = sum(weights.values())
    if abs(total - 1.0) > _SUM_TOL:
        raise WeightError(f"weights must sum to 1, got {total!r}")
    return dict(weights)


def renormalize_weights(
    weights: Mapping[str, float], survivors
) -> Dict[str, float]:
    """Restrict full-suite weights to the surviving benchmarks, re-summing to 1.

    The graceful-degradation rule of the fault-tolerance layer: when a
    campaign loses benchmarks, the survivors' original weights are scaled
    by the inverse of their combined mass so the Section II constraint
    (Σ W_i = 1) still holds over the reduced suite.  Raises
    :class:`~repro.exceptions.WeightError` when a survivor has no weight
    or the surviving mass is zero (nothing to renormalize over).
    """
    validate_weights(weights)
    survivors = list(survivors)
    if not survivors:
        raise WeightError("no surviving benchmarks to renormalize weights over")
    missing = [name for name in survivors if name not in weights]
    if missing:
        raise WeightError(
            f"survivors {missing} have no weight; weights cover {sorted(weights)}"
        )
    kept = {name: weights[name] for name in survivors}
    return validate_weights(_normalize(kept, "surviving benchmarks"))


def _normalize(raw: Dict[str, float], what: str) -> Dict[str, float]:
    total = sum(raw.values())
    if total <= 0:
        raise WeightError(f"cannot weight by {what}: total is {total}")
    return {name: value / total for name, value in raw.items()}


class WeightingScheme(abc.ABC):
    """Produces per-benchmark weights for one suite result."""

    #: Short name used in reports and experiment tables.
    name: str = "weights"

    @abc.abstractmethod
    def weights(self, suite_result: SuiteResult) -> Dict[str, float]:
        """benchmark name -> weight; guaranteed to satisfy the constraint."""

    def partial_weights(self, suite_result: SuiteResult) -> Dict[str, float]:
        """Weights for a *partial* suite (some benchmarks lost to failures).

        Measurement-derived schemes (arithmetic mean, time, energy, power)
        already compute from whatever the suite contains, which *is* the
        renormalization over survivors — so the default just delegates.
        Schemes with fixed full-suite weights override this (see
        :class:`CustomWeights`).
        """
        return self.weights(suite_result)


class ArithmeticMeanWeights(WeightingScheme):
    """Equal weights, Eq. 6: the TGI of Figure 5."""

    name = "arithmetic-mean"

    def weights(self, suite_result: SuiteResult) -> Dict[str, float]:
        n = len(suite_result)
        return validate_weights({r.benchmark: 1.0 / n for r in suite_result})


class TimeWeights(WeightingScheme):
    """Eq. 10: weights proportional to each benchmark's execution time.

    The paper shows (Eq. 13) this preserves the desired inverse-energy
    property for a given performance.
    """

    name = "time"

    def weights(self, suite_result: SuiteResult) -> Dict[str, float]:
        raw = {r.benchmark: r.time_s for r in suite_result}
        return validate_weights(_normalize(raw, "time"))


class EnergyWeights(WeightingScheme):
    """Eq. 11: weights proportional to each benchmark's energy.

    The paper shows (Eq. 14) this *cancels* the energy term — an undesired
    property it demonstrates via Table II.
    """

    name = "energy"

    def weights(self, suite_result: SuiteResult) -> Dict[str, float]:
        raw = {r.benchmark: r.energy_j for r in suite_result}
        return validate_weights(_normalize(raw, "energy"))


class PowerWeights(WeightingScheme):
    """Eq. 12: weights proportional to each benchmark's mean power (Eq. 15)."""

    name = "power"

    def weights(self, suite_result: SuiteResult) -> Dict[str, float]:
        raw = {r.benchmark: r.power_w for r in suite_result}
        return validate_weights(_normalize(raw, "power"))


class CustomWeights(WeightingScheme):
    """Fixed user-chosen weights (must cover the suite exactly)."""

    def __init__(self, weights: Mapping[str, float], *, name: str = "custom"):
        self._weights = validate_weights(weights)
        self.name = name

    def weights(self, suite_result: SuiteResult) -> Dict[str, float]:
        names = set(suite_result.names)
        covered = set(self._weights)
        if names != covered:
            raise WeightError(
                f"custom weights cover {sorted(covered)}, suite has {sorted(names)}"
            )
        return dict(self._weights)

    def partial_weights(self, suite_result: SuiteResult) -> Dict[str, float]:
        """The fixed weights restricted to the survivors and re-summed to 1."""
        return renormalize_weights(self._weights, suite_result.names)
