"""Text reports for suite results, TGI results, and rankings."""

from __future__ import annotations

from typing import List, Sequence

from ..analysis.tables import render_table
from ..benchmarks.suite import SuiteResult
from ..units import (
    format_energy,
    format_power,
    format_time,
    si_format,
)
from .ranking import RankedSystem
from .tgi import TGIResult

__all__ = ["format_suite_result", "format_tgi_result", "format_ranking"]


def format_suite_result(suite_result: SuiteResult, *, title: str = "") -> str:
    """Render a suite run as a Table-I-style performance/power table."""
    rows = []
    for r in suite_result.results:
        rows.append(
            [
                r.benchmark,
                si_format(r.performance, r.metric_label),
                format_time(r.time_s),
                format_power(r.power_w),
                format_energy(r.energy_j),
                si_format(r.energy_efficiency, f"{r.metric_label}/W"),
            ]
        )
    return render_table(
        ["Benchmark", "Performance", "Time", "Power", "Energy", "EE"],
        rows,
        title=title or f"Suite results @ {suite_result.cores} cores",
    )


def format_tgi_result(result: TGIResult) -> str:
    """Render one TGI computation with its ingredients."""
    rows = []
    for name in sorted(result.ree):
        rows.append(
            [
                name,
                f"{result.efficiencies[name]:.4g}",
                f"{result.ree[name]:.4f}",
                f"{result.weights[name]:.4f}",
                f"{result.weights[name] * result.ree[name]:.4f}",
            ]
        )
    partial = (
        ""
        if result.complete
        else (
            f" PARTIAL: {result.coverage:.0%} coverage, "
            f"missing {', '.join(result.missing)}"
        )
    )
    table = render_table(
        ["Benchmark", "EE", "REE", "Weight", "Contribution"],
        rows,
        title=(
            f"TGI = {result.value:.4f}  "
            f"(weights: {result.weighting_name}, reference: {result.reference_name}, "
            f"{result.cores} cores){partial}"
        ),
    )
    return table


def format_ranking(ranking: Sequence[RankedSystem]) -> str:
    """Render a Green500-style TGI ranking.

    When any entry is a degraded (partial-coverage) TGI, a Coverage
    column appears so no partial number can masquerade as a full one;
    full-coverage rankings render exactly as before.
    """
    any_partial = any(not entry.tgi.complete for entry in ranking)
    rows: List[List[object]] = []
    for entry in ranking:
        row: List[object] = [
            entry.rank,
            entry.system_name,
            f"{entry.value:.4f}",
            entry.tgi.least_efficient_benchmark,
        ]
        if any_partial:
            row.append(
                "full" if entry.tgi.complete else f"{entry.coverage:.0%}"
            )
        rows.append(row)
    headers = ["Rank", "System", "TGI", "Weakest subsystem"]
    if any_partial:
        headers.append("Coverage")
    return render_table(
        headers,
        rows,
        title="TGI ranking (greener first)",
        align_right_from=2,
    )
