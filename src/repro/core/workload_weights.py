"""Application-profile-driven TGI weights (Section II, advantage 1).

"Each weighting factor can be assigned a value based [on] the specific
needs of the user, e.g., assigning a higher weighting factor for the
memory benchmark if we are evaluating a supercomputer to execute a
memory-intensive application."  This module turns that sentence into a
mechanism: describe the application as time fractions spent bound on each
subsystem (:class:`ApplicationProfile`), map suite benchmarks to the
subsystems they probe, and derive the weights.

Subsystems an application can be bound on::

    compute | memory_bandwidth | memory_latency | io | network

Default benchmark mapping: HPL -> compute, STREAM -> memory_bandwidth,
RandomAccess -> memory_latency, IOzone -> io, b_eff -> network.  Profile
mass on subsystems the suite does not probe is redistributed
proportionally over the probed ones (documented, validated, and visible in
the returned weights).

A few literature-shaped example profiles ship as module constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..benchmarks.suite import SuiteResult
from ..exceptions import WeightError
from .weights import WeightingScheme, validate_weights

__all__ = [
    "SUBSYSTEMS",
    "DEFAULT_BENCHMARK_SUBSYSTEMS",
    "ApplicationProfile",
    "WorkloadWeights",
    "CFD_PROFILE",
    "GENOMICS_PROFILE",
    "CHECKPOINT_HEAVY_PROFILE",
    "DENSE_LINALG_PROFILE",
]

#: Subsystems an application's time can be attributed to.
SUBSYSTEMS = ("compute", "memory_bandwidth", "memory_latency", "io", "network")

#: Which subsystem each known benchmark probes.
DEFAULT_BENCHMARK_SUBSYSTEMS: Dict[str, str] = {
    "HPL": "compute",
    "STREAM": "memory_bandwidth",
    "RandomAccess": "memory_latency",
    "IOzone": "io",
    "b_eff": "network",
}


@dataclass(frozen=True)
class ApplicationProfile:
    """Time fractions an application spends bound on each subsystem.

    Fractions must be non-negative and sum to 1 (within rounding).
    """

    name: str
    compute: float = 0.0
    memory_bandwidth: float = 0.0
    memory_latency: float = 0.0
    io: float = 0.0
    network: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise WeightError("profile name must be non-empty")
        total = 0.0
        for subsystem in SUBSYSTEMS:
            value = getattr(self, subsystem)
            if not 0.0 <= value <= 1.0:
                raise WeightError(
                    f"profile fraction {subsystem} must be in [0, 1], got {value!r}"
                )
            total += value
        if abs(total - 1.0) > 1e-9:
            raise WeightError(f"profile fractions must sum to 1, got {total!r}")

    def fraction(self, subsystem: str) -> float:
        """Time fraction for one subsystem."""
        if subsystem not in SUBSYSTEMS:
            raise WeightError(f"unknown subsystem {subsystem!r}; valid: {SUBSYSTEMS}")
        return getattr(self, subsystem)

    @property
    def dominant_subsystem(self) -> str:
        """The subsystem with the largest fraction (alphabetical tiebreak)."""
        return max(sorted(SUBSYSTEMS), key=self.fraction)


#: A pressure-solver CFD code: bandwidth-bound sparse kernels + halo exchange.
CFD_PROFILE = ApplicationProfile(
    name="CFD (sparse pressure solver)",
    compute=0.15,
    memory_bandwidth=0.50,
    memory_latency=0.05,
    io=0.05,
    network=0.25,
)

#: Short-read alignment: pointer chasing over big indexes + file streaming.
GENOMICS_PROFILE = ApplicationProfile(
    name="Genomics (read alignment)",
    compute=0.20,
    memory_bandwidth=0.10,
    memory_latency=0.40,
    io=0.25,
    network=0.05,
)

#: A tightly-coupled code dominated by defensive checkpointing.
CHECKPOINT_HEAVY_PROFILE = ApplicationProfile(
    name="Checkpoint-heavy simulation",
    compute=0.35,
    memory_bandwidth=0.10,
    memory_latency=0.05,
    io=0.40,
    network=0.10,
)

#: Dense linear algebra: the workload HPL itself represents.
DENSE_LINALG_PROFILE = ApplicationProfile(
    name="Dense linear algebra",
    compute=0.80,
    memory_bandwidth=0.10,
    memory_latency=0.02,
    io=0.03,
    network=0.05,
)


class WorkloadWeights(WeightingScheme):
    """Derive TGI weights for a suite from an application profile.

    Parameters
    ----------
    profile:
        The application's subsystem time fractions.
    benchmark_subsystems:
        benchmark name -> subsystem it probes; defaults to
        :data:`DEFAULT_BENCHMARK_SUBSYSTEMS`.  Every suite member must be
        mapped, and no two members may probe the same subsystem (the
        attribution would be ambiguous).
    """

    def __init__(
        self,
        profile: ApplicationProfile,
        *,
        benchmark_subsystems: Mapping[str, str] = None,
    ):
        self.profile = profile
        self.benchmark_subsystems = dict(
            benchmark_subsystems or DEFAULT_BENCHMARK_SUBSYSTEMS
        )
        for name, subsystem in self.benchmark_subsystems.items():
            if subsystem not in SUBSYSTEMS:
                raise WeightError(
                    f"benchmark {name!r} mapped to unknown subsystem {subsystem!r}"
                )
        self.name = f"workload:{profile.name}"

    def weights(self, suite_result: SuiteResult) -> Dict[str, float]:
        names = suite_result.names
        unmapped = [n for n in names if n not in self.benchmark_subsystems]
        if unmapped:
            raise WeightError(
                f"no subsystem mapping for suite members {unmapped}; "
                f"pass benchmark_subsystems"
            )
        subsystems = [self.benchmark_subsystems[n] for n in names]
        if len(set(subsystems)) != len(subsystems):
            raise WeightError(
                f"two suite members probe the same subsystem: {subsystems}"
            )
        raw = {n: self.profile.fraction(s) for n, s in zip(names, subsystems)}
        covered = sum(raw.values())
        if covered <= 0:
            raise WeightError(
                f"profile {self.profile.name!r} has no mass on any subsystem "
                f"this suite probes ({sorted(set(subsystems))})"
            )
        # redistribute unprobed mass proportionally
        weights = {n: v / covered for n, v in raw.items()}
        return validate_weights(weights)
