"""The "desired property" analysis (paper Section III, Eqs. 5 and 13-15).

Section III argues an energy-efficiency metric should be *inversely
proportional to energy consumed* for a given amount of work, and derives
what each weighting does to that property:

* arithmetic-mean and time weights keep energy in the denominator (Eqs. 8
  and 13) — the property holds;
* energy weights (Eq. 14) and power weights (Eq. 15) cancel the
  per-benchmark energy term — the property is lost, which is why Table II
  shows them tracking the energy-dominant benchmark (HPL) instead of the
  least-efficient one.

The three ``*_identity`` functions compute both sides of the corresponding
derivation from a measured suite result so tests (and readers) can confirm
the algebra against the simulator's numbers.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..benchmarks.suite import SuiteResult
from ..exceptions import MetricError
from .ree import ReferenceSet
from .tgi import TGICalculator
from .weights import EnergyWeights, PowerWeights, TimeWeights

__all__ = [
    "inverse_energy_property_holds",
    "time_weighted_identity",
    "energy_weighted_identity",
    "power_weighted_identity",
]


def inverse_energy_property_holds(
    metric: Callable[[float, float, float], float],
    *,
    work: float = 1e12,
    time_s: float = 100.0,
    energy_j: float = 1e5,
    scale_factors: Tuple[float, ...] = (0.5, 2.0, 4.0),
    rel_tol: float = 1e-9,
) -> bool:
    """Numerically test Section III's desired property for a metric.

    ``metric(work, time_s, energy_j)`` must be an efficiency function.  The
    property: at fixed work and time, scaling the energy by ``k`` must scale
    the metric by ``1/k`` (the metric is inversely proportional to energy).

    Performance-per-watt satisfies it:
    ``(work/t) / (E/t) = work / E``; EDP-based efficiency does too.
    """
    if work <= 0 or time_s <= 0 or energy_j <= 0:
        raise MetricError("work, time_s, and energy_j must be positive")
    base = metric(work, time_s, energy_j)
    if base <= 0:
        raise MetricError(f"metric must be positive at the base point, got {base}")
    for k in scale_factors:
        scaled = metric(work, time_s, energy_j * k)
        expected = base / k
        if abs(scaled - expected) > rel_tol * abs(expected):
            return False
    return True


def _per_benchmark(suite_result: SuiteResult) -> Dict[str, Tuple[float, float, float]]:
    """name -> (M_i, t_i, e_i): metric rate, time, energy."""
    return {
        r.benchmark: (r.performance, r.time_s, r.energy_j) for r in suite_result.results
    }


def time_weighted_identity(
    suite_result: SuiteResult, reference: ReferenceSet
) -> Tuple[float, float]:
    """Both sides of Eq. 13.

    Left: TGI computed through the pipeline with time weights.
    Right: the closed form ``(1/sum t) * sum_i t_i^2 M_i / (e_i EE_ref,i)``
    — per-benchmark energy ``e_i`` survives in the denominator, so the
    desired property holds.
    """
    left = TGICalculator(reference, weighting=TimeWeights()).compute(suite_result).value
    data = _per_benchmark(suite_result)
    total_time = sum(t for _, t, _ in data.values())
    right = sum(
        t * t * m / (e * reference.efficiency(name))
        for name, (m, t, e) in data.items()
    ) / total_time
    return left, right


def energy_weighted_identity(
    suite_result: SuiteResult, reference: ReferenceSet
) -> Tuple[float, float]:
    """Both sides of Eq. 14.

    Right-hand closed form: ``(1/sum e) * sum_i M_i t_i / EE_ref,i`` —
    the per-benchmark energy has *cancelled* (only the total remains),
    losing the desired property.
    """
    left = TGICalculator(reference, weighting=EnergyWeights()).compute(suite_result).value
    data = _per_benchmark(suite_result)
    total_energy = sum(e for _, _, e in data.values())
    right = sum(
        m * t / reference.efficiency(name) for name, (m, t, _) in data.items()
    ) / total_energy
    return left, right


def power_weighted_identity(
    suite_result: SuiteResult, reference: ReferenceSet
) -> Tuple[float, float]:
    """Both sides of Eq. 15.

    Right-hand closed form: ``(1/sum p) * sum_i M_i / EE_ref,i`` — the
    per-benchmark power has cancelled, losing the desired property.
    """
    left = TGICalculator(reference, weighting=PowerWeights()).compute(suite_result).value
    data = _per_benchmark(suite_result)
    total_power = sum(e / t for _, t, e in data.values())
    right = sum(m / reference.efficiency(name) for name, (m, _, _) in data.items()) / total_power
    return left, right
