"""Relative energy efficiency against a reference system (paper Eq. 3).

``REE_i = EE_i / EE_ref,i`` normalizes each benchmark's efficiency by the
same benchmark's efficiency on a fixed reference machine — the SPEC-rating
trick (Eq. 1) that makes GFLOPS/W and MB/s/W commensurable so they can be
averaged.  A :class:`ReferenceSet` holds the reference efficiencies, keyed
by benchmark name, and is typically built once from a
:class:`~repro.benchmarks.suite.SuiteResult` measured on the reference
system (the paper's SystemG, Table I).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..benchmarks.suite import SuiteResult
from ..exceptions import MetricError, ReferenceMismatchError
from ..validation import check_positive
from .efficiency import EfficiencyMetric, PerformancePerWatt

__all__ = ["relative_efficiency", "ReferenceSet"]


def relative_efficiency(efficiency: float, reference_efficiency: float) -> float:
    """Eq. 3: the system-under-test's efficiency over the reference's."""
    check_positive(efficiency, "efficiency", exc=MetricError)
    check_positive(reference_efficiency, "reference_efficiency", exc=MetricError)
    return efficiency / reference_efficiency


class ReferenceSet:
    """Per-benchmark reference efficiencies.

    Parameters
    ----------
    efficiencies:
        benchmark name -> reference efficiency (must be positive).
    system_name:
        Name of the reference machine (for reports).
    """

    def __init__(self, efficiencies: Mapping[str, float], *, system_name: str = "reference"):
        if not efficiencies:
            raise MetricError("reference set must cover at least one benchmark")
        cleaned: Dict[str, float] = {}
        for name, value in efficiencies.items():
            cleaned[name] = check_positive(value, f"reference EE[{name}]", exc=MetricError)
        self._efficiencies = cleaned
        self.system_name = system_name

    @classmethod
    def from_suite_result(
        cls,
        suite_result: SuiteResult,
        *,
        metric: Optional[EfficiencyMetric] = None,
        system_name: str = "reference",
    ) -> "ReferenceSet":
        """Build a reference from a measured suite run (the paper's Table I).

        The same :class:`~repro.core.efficiency.EfficiencyMetric` must be
        used for the reference and the system under test; the default is
        performance-per-watt.
        """
        metric = metric or PerformancePerWatt()
        return cls(
            {r.benchmark: metric.value(r) for r in suite_result.results},
            system_name=system_name,
        )

    @property
    def benchmarks(self) -> list:
        """Covered benchmark names, sorted."""
        return sorted(self._efficiencies)

    def efficiency(self, benchmark: str) -> float:
        """Reference efficiency for one benchmark."""
        try:
            return self._efficiencies[benchmark]
        except KeyError:
            raise ReferenceMismatchError(
                f"reference set ({self.system_name}) has no entry for {benchmark!r}; "
                f"covers {self.benchmarks}"
            ) from None

    def relative(self, benchmark: str, efficiency: float) -> float:
        """REE for one benchmark measurement (Eq. 3)."""
        return relative_efficiency(efficiency, self.efficiency(benchmark))

    def check_covers(self, benchmarks) -> None:
        """Raise unless every given benchmark has a reference entry."""
        missing = [b for b in benchmarks if b not in self._efficiencies]
        if missing:
            raise ReferenceMismatchError(
                f"reference set ({self.system_name}) missing benchmarks {missing}; "
                f"covers {self.benchmarks}"
            )

    def as_dict(self) -> Dict[str, float]:
        """A copy of the underlying mapping."""
        return dict(self._efficiencies)

    def __repr__(self) -> str:
        entries = ", ".join(f"{k}={v:.4g}" for k, v in sorted(self._efficiencies.items()))
        return f"ReferenceSet({self.system_name}: {entries})"
