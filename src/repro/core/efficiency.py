"""Per-benchmark energy-efficiency metrics (paper Eq. 2 and Section II).

The canonical metric is performance-to-power (FLOPS/W, MB/s/W, ...), Eq. 2:

    EE_i = Performance_i / Power_i

The paper stresses that the TGI methodology works with *any* energy-
efficiency metric; :class:`EfficiencyMetric` is that extension point.
A metric must be "higher is better" so that REE and TGI keep their
interpretation; rate-based metrics like EDP are therefore inverted
(:class:`InverseEDP`).
"""

from __future__ import annotations

import abc

from ..benchmarks.base import BenchmarkResult
from ..exceptions import MetricError
from ..validation import check_non_negative, check_positive

__all__ = ["energy_efficiency", "EfficiencyMetric", "PerformancePerWatt", "InverseEDP"]


def energy_efficiency(performance: float, power_watts: float) -> float:
    """Eq. 2: performance per watt.

    As the paper notes (Eq. 5), for rate metrics this equals work per joule:
    FLOPS/W = FLOP/J.
    """
    check_non_negative(performance, "performance", exc=MetricError)
    check_positive(power_watts, "power_watts", exc=MetricError)
    return performance / power_watts


class EfficiencyMetric(abc.ABC):
    """Maps a benchmark result to a higher-is-better efficiency value."""

    #: Short name used in reports.
    name: str = "efficiency"

    @abc.abstractmethod
    def value(self, result: BenchmarkResult) -> float:
        """Efficiency of one run (must be > 0 for valid runs)."""


class PerformancePerWatt(EfficiencyMetric):
    """The paper's default metric: Eq. 2."""

    name = "perf/W"

    def value(self, result: BenchmarkResult) -> float:
        return energy_efficiency(result.performance, result.power_w)


class InverseEDP(EfficiencyMetric):
    """1 / (energy x delay^w): the EDP alternative mentioned in Section II.

    Inverted so that higher remains better; ``weight`` selects EDP (1) or
    ED^2P (2).
    """

    def __init__(self, *, weight: int = 1):
        if weight < 1:
            raise MetricError(f"weight must be >= 1, got {weight}")
        self.weight = weight
        self.name = f"1/ED{'^' + str(weight) if weight > 1 else ''}P"

    def value(self, result: BenchmarkResult) -> float:
        energy = result.energy_j
        delay = result.time_s
        if energy <= 0 or delay <= 0:
            raise MetricError(
                f"EDP needs positive energy and delay, got E={energy}, t={delay}"
            )
        return 1.0 / (energy * delay**self.weight)
